"""Tests for the tiled photonic tensor core (paper Section III)."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def core(tech):
    core = PhotonicTensorCore(rows=4, columns=8, weight_bits=3, technology=tech)
    rng = np.random.default_rng(21)
    core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
    return core


def test_default_dimensions_match_paper(tech):
    core = PhotonicTensorCore(technology=tech, rows=2, columns=4)
    assert core.weight_bits == 3
    assert core.max_weight == 7


def test_matvec_tracks_ideal_within_adc_resolution(core):
    """The photonic estimate must sit within ~1 output LSB of W @ x."""
    rng = np.random.default_rng(5)
    full_scale = core.columns * core.max_weight
    lsb_in_dot_units = full_scale / core.row_adcs[0].levels
    for _ in range(5):
        x = rng.uniform(0.0, 1.0, core.columns)
        result = core.matvec(x)
        ideal = core.ideal_matvec(x)
        assert np.all(np.abs(result.estimates - ideal) <= 1.2 * lsb_in_dot_units)


def test_matvec_matches_quantization_limited_reference(core):
    """Photonic non-ideality must not add more than ~1 code of error on
    top of pure output quantization."""
    rng = np.random.default_rng(6)
    for _ in range(5):
        x = rng.uniform(0.0, 1.0, core.columns)
        photonic = core.matvec(x).estimates
        quantized = core.quantization_limited_matvec(x)
        lsb = core.columns * core.max_weight / core.row_adcs[0].levels
        assert np.all(np.abs(photonic - quantized) <= 1.5 * lsb)


def test_codes_monotone_in_input_magnitude(core):
    weak = core.matvec(np.full(core.columns, 0.1)).codes
    strong = core.matvec(np.full(core.columns, 0.9)).codes
    assert np.all(strong >= weak)


def test_matmul_batches_columns(core):
    rng = np.random.default_rng(7)
    batch = rng.uniform(0.0, 1.0, (core.columns, 3))
    product = core.matmul(batch)
    assert product.shape == (core.rows, 3)
    for col in range(3):
        single = core.matvec(batch[:, col]).estimates
        assert np.allclose(product[:, col], single)


def test_matmul_gain_passthrough(core):
    """matmul must forward the TIA range setting to every column's
    matvec instead of silently evaluating at native gain."""
    rng = np.random.default_rng(8)
    batch = rng.uniform(0.0, 0.4, (core.columns, 3))
    product = core.matmul(batch, gain=2.0)
    for col in range(3):
        single = core.matvec(batch[:, col], gain=2.0).estimates
        assert np.allclose(product[:, col], single)
    # A hotter TIA resolves small dot products that native gain rounds
    # into the same coarse codes.
    native = core.matmul(batch)
    ideal = core.weight_matrix @ batch
    assert np.abs(product - ideal).max() <= np.abs(native - ideal).max() + 1e-12


def test_validation_reports_offending_shape(core):
    with pytest.raises(ConfigurationError, match=r"\(3,\)"):
        core.matvec(np.ones(3))
    with pytest.raises(ConfigurationError, match=r"\(3, 2\)"):
        core.matmul(np.ones((3, 2)))
    with pytest.raises(ConfigurationError, match="1.5"):
        core.matvec(np.full(8, 1.5))


def test_weight_update_time_and_energy(tech):
    core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
    assert core.weight_update_time() == pytest.approx(4 / 20e9)
    core.load_weight_matrix(np.full((2, 4), 7))
    # 2x4 words x 3 bits all flip 0 -> 1.
    assert core.weight_update_energy() == pytest.approx(24 * 0.5e-12, rel=1e-3)


def test_weight_matrix_round_trip(core):
    matrix = core.weight_matrix
    assert matrix.shape == (4, 8)
    for row in range(4):
        assert np.array_equal(core.row_cores[row].weights, matrix[row])


def test_dequantize_codes_inverts_code_mapping(core):
    codes = np.array([0, 3, 7, 5])
    estimates = core.dequantize_codes(codes)
    assert estimates.shape == (4,)
    assert np.all(np.diff(estimates[np.argsort(codes)]) >= 0)


def test_performance_handle(core):
    perf = core.performance()
    assert perf.rows == 4 and perf.columns == 8
    assert perf.throughput_tops > 0


def test_input_validation(core):
    with pytest.raises(ConfigurationError):
        core.matvec(np.ones(3))
    with pytest.raises(ConfigurationError):
        core.matvec(np.full(8, 1.5))
    with pytest.raises(ConfigurationError):
        core.matmul(np.ones((3, 2)))


def test_weight_matrix_validation(tech):
    core = PhotonicTensorCore(rows=2, columns=2, technology=tech)
    with pytest.raises(ConfigurationError):
        core.load_weight_matrix(np.ones((3, 2), dtype=int))
    with pytest.raises(ConfigurationError):
        PhotonicTensorCore(rows=0, columns=2, technology=tech)


def test_invalidate_ladders_after_inplace_adc_retune(tech):
    """Regression: the ladder memos assume the converters never change
    after construction.  Re-tuning an ADC in place (here: halving the
    full-scale range, as a recalibration re-trim would) must not keep
    serving the old bisected ladder once ``invalidate_ladders`` ran."""
    import dataclasses

    core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
    core.load_weight_matrix(np.full((2, 4), 3, dtype=int))
    first = core.compile()
    assert len(core.runtime_ladder_cache) == 1  # one shared trim/spec

    # In-place parameter change: both memo layers (the ADC's own
    # boundary cache and the core's cross-compiler ladder memo) go
    # stale — a fresh compile still serves the 4 V ladder.
    for adc in core.row_adcs:
        adc.spec = dataclasses.replace(adc.spec, full_scale_voltage=2.0)
        adc.reference_voltages = np.asarray(adc.spec.reference_voltages())
    stale = core.compile()
    assert np.array_equal(stale.boundaries, first.boundaries)

    core.invalidate_ladders()
    assert len(core.runtime_ladder_cache) == 0
    fresh = core.compile()
    assert not np.array_equal(fresh.boundaries, first.boundaries)
    assert fresh.boundaries.max() <= 2.0  # re-bisected on the new range
    assert len(core.runtime_ladder_cache) == 1


def test_invalidate_ladders_clears_every_row_adc_memo(tech):
    core = PhotonicTensorCore(rows=2, columns=4, technology=tech)
    for adc in core.row_adcs:
        adc.code_boundaries()
        assert adc._code_boundaries is not None
    core.invalidate_ladders()
    for adc in core.row_adcs:
        assert adc._code_boundaries is None
