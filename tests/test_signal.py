"""Unit tests for WDM signal containers."""

import numpy as np
import pytest

from repro.errors import PhotonicsError
from repro.photonics.signal import WDMSignal, merge_signals


def test_single_carrier_accessors():
    signal = WDMSignal.single(1310.5e-9, 1e-3)
    assert signal.num_channels == 1
    assert signal.total_power == pytest.approx(1e-3)
    assert signal.power_at(1310.5e-9) == pytest.approx(1e-3)
    assert signal.power_at(1550e-9) == 0.0


def test_wavelengths_sorted_on_construction():
    signal = WDMSignal([1550e-9, 1310e-9], [1e-3, 2e-3])
    assert np.all(np.diff(signal.wavelengths) > 0)
    assert signal.power_at(1310e-9) == pytest.approx(2e-3)


def test_rejects_mismatched_shapes():
    with pytest.raises(PhotonicsError):
        WDMSignal([1310e-9, 1311e-9], [1e-3])


def test_rejects_negative_power_and_wavelength():
    with pytest.raises(PhotonicsError):
        WDMSignal([1310e-9], [-1e-3])
    with pytest.raises(PhotonicsError):
        WDMSignal([-1310e-9], [1e-3])


def test_scaled_by_scalar_and_vector():
    signal = WDMSignal([1310e-9, 1312e-9], [1e-3, 2e-3])
    halved = signal.scaled(0.5)
    assert halved.total_power == pytest.approx(1.5e-3)
    weighted = signal.scaled([1.0, 0.0])
    assert weighted.power_at(1312e-9) == 0.0
    assert weighted.power_at(1310e-9) == pytest.approx(1e-3)


def test_scaled_rejects_negative_factor():
    signal = WDMSignal.single(1310e-9, 1e-3)
    with pytest.raises(PhotonicsError):
        signal.scaled(-0.1)


def test_attenuated_db():
    signal = WDMSignal.single(1310e-9, 1e-3)
    assert signal.attenuated_db(3.0).total_power == pytest.approx(1e-3 * 10 ** (-0.3))


def test_merge_adds_coincident_carriers():
    one = WDMSignal.single(1310e-9, 1e-3)
    two = WDMSignal.single(1310e-9, 2e-3)
    merged = one.merged_with(two)
    assert merged.num_channels == 1
    assert merged.total_power == pytest.approx(3e-3)


def test_merge_keeps_distinct_carriers():
    one = WDMSignal.single(1310e-9, 1e-3)
    two = WDMSignal.single(1312.33e-9, 2e-3)
    merged = merge_signals([one, two])
    assert merged.num_channels == 2
    assert merged.total_power == pytest.approx(3e-3)


def test_merge_rejects_empty():
    with pytest.raises(PhotonicsError):
        merge_signals([])


def test_dark_and_mapping_round_trip():
    dark = WDMSignal.dark([1310e-9, 1312e-9])
    assert dark.total_power == 0.0
    mapping = {1310e-9: 1e-3, 1312e-9: 2e-3}
    signal = WDMSignal.from_mapping(mapping)
    assert signal.as_mapping() == pytest.approx(mapping)
