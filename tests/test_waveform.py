"""Unit tests for waveforms and stimulus builders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.waveform import PulseTrain, StepSequence, Waveform


def test_waveform_validation():
    with pytest.raises(ConfigurationError):
        Waveform([0.0, 1.0], [0.0])
    with pytest.raises(ConfigurationError):
        Waveform([0.0, 0.0], [1.0, 2.0])  # non-increasing time base
    with pytest.raises(ConfigurationError):
        Waveform([], [])


def test_value_interpolation():
    wave = Waveform([0.0, 1.0], [0.0, 2.0])
    assert wave.value_at(0.5) == pytest.approx(1.0)
    assert wave.final_value() == 2.0
    assert wave.duration == 1.0


def test_crossings_both_directions():
    times = np.linspace(0.0, 2 * np.pi, 1001)
    wave = Waveform(times, np.sin(times))
    rising = wave.crossings(0.5, rising=True)
    falling = wave.crossings(0.5, rising=False)
    assert rising[0] == pytest.approx(np.arcsin(0.5), abs=1e-2)
    assert falling[0] == pytest.approx(np.pi - np.arcsin(0.5), abs=1e-2)


def test_crossings_interpolate_between_samples():
    wave = Waveform([0.0, 1.0], [0.0, 1.0])
    assert wave.crossings(0.25) == [pytest.approx(0.25)]


def test_settling_time():
    times = np.linspace(0.0, 10.0, 1001)
    values = 1.0 - np.exp(-times)
    wave = Waveform(times, values)
    settle = wave.settling_time(target=1.0, tolerance=0.05)
    assert settle == pytest.approx(3.0, abs=0.05)  # -ln(0.05) ~ 3


def test_settling_never_raises():
    wave = Waveform([0.0, 1.0], [0.0, 0.0])
    with pytest.raises(SimulationError):
        wave.settling_time(target=1.0, tolerance=0.01)


def test_window_extraction():
    wave = Waveform([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0])
    sub = wave.window(0.5, 2.5)
    assert sub.times.tolist() == [1.0, 2.0]
    with pytest.raises(ConfigurationError):
        wave.window(2.0, 1.0)


def test_pulse_train_levels():
    train = PulseTrain(baseline=1e-6).add_pulse(10e-12, 50e-12, 1e-3)
    assert train.level_at(5e-12) == pytest.approx(1e-6)
    assert train.level_at(30e-12) == pytest.approx(1e-3 + 1e-6)
    assert train.level_at(60.1e-12) == pytest.approx(1e-6)
    assert train.pulse_count == 1


def test_pulse_train_overlapping_pulses_add():
    train = PulseTrain().add_pulse(0.0, 2.0, 1.0).add_pulse(1.0, 2.0, 1.0)
    assert train(1.5) == pytest.approx(2.0)


def test_pulse_train_rejects_bad_width():
    with pytest.raises(ConfigurationError):
        PulseTrain().add_pulse(0.0, 0.0, 1.0)


def test_step_sequence_levels_and_clamping():
    seq = StepSequence([0.72, 2.0, 3.3], period=125e-12)
    assert seq(10e-12) == 0.72
    assert seq(130e-12) == 2.0
    assert seq(300e-12) == 3.3
    assert seq(999e-12) == 3.3  # clamps to the last level
    assert seq(-10e-12) == 0.72  # clamps to the first


def test_step_sequence_sample_times():
    seq = StepSequence([1.0, 2.0], period=100e-12)
    samples = seq.sample_times()
    assert len(samples) == 2
    assert samples[0] < 100e-12 <= samples[0] + 1e-12
    assert seq.duration == pytest.approx(200e-12)


def test_step_sequence_validation():
    with pytest.raises(ConfigurationError):
        StepSequence([], period=1.0)
    with pytest.raises(ConfigurationError):
        StepSequence([1.0], period=0.0)
    with pytest.raises(ConfigurationError):
        StepSequence([1.0], period=1.0).sample_times(offset_fraction=0.0)
