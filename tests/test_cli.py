"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import main


def test_default_summary(capsys):
    assert main([]) == 0
    output = capsys.readouterr().out
    assert "TOPS" in output and "This Work" in output


def test_demo(capsys):
    assert main(["demo"]) == 0
    output = capsys.readouterr().out
    assert "ADC codes" in output


def test_adc(capsys):
    assert main(["adc"]) == 0
    output = capsys.readouterr().out
    assert "V_IN" in output
    assert output.count("\n") >= 13


def test_serve_bench(capsys):
    assert main(["serve-bench", "24"]) == 0
    output = capsys.readouterr().out
    assert "inferences/s" in output
    assert "requests          : 24" in output
    assert "hit rate" in output


def test_serve_bench_cnn(capsys):
    assert main(["serve-bench", "cnn", "8"]) == 0
    output = capsys.readouterr().out
    assert "images/s" in output
    assert "conv program" in output
    assert "hit rate" in output


def test_serve_bench_cluster_smoke_writes_json(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["serve-bench", "cluster", "--smoke", "--seed", "3"]) == 0
    output = capsys.readouterr().out
    assert "cluster serve-bench" in output
    assert "cache_affinity" in output and "round_robin" in output
    assert "seed 3" in output
    bench_json = tmp_path / "BENCH_cluster.json"
    assert bench_json.exists()
    import json

    data = json.loads(bench_json.read_text())
    assert data["cores_sweep"] == [1, 2, 4]
    assert data["seed"] == 3
    assert all(entry["throughput_per_s"] > 0.0 for entry in data["sweep"])


def test_serve_bench_traffic_smoke_writes_json(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["serve-bench", "traffic", "2000", "--smoke", "--seed", "3"]) == 0
    output = capsys.readouterr().out
    assert "traffic serve-bench" in output
    assert "head-to-head" in output and "SLO" in output
    bench_json = tmp_path / "BENCH_traffic.json"
    assert bench_json.exists()
    import json

    data = json.loads(bench_json.read_text())
    assert data["seed"] == 3
    assert data["sustained"]["offered"] == 2000
    assert [entry["cores"] for entry in data["capacity_curve"]] == [1, 2]
    for entry in data["capacity_curve"]:
        assert set(entry["policies"]) == {
            "round_robin", "least_loaded", "cache_affinity",
        }
    # The acceptance head-to-head: the SLO-aware policy sheds far less.
    head = data["head_to_head"]
    assert head["slo_aware"]["deadline_misses"] < head["max_batch"]["deadline_misses"]


def test_serve_bench_traffic_rejects_bad_count(capsys):
    assert main(["serve-bench", "traffic", "zero"]) == 2
    assert main(["serve-bench", "traffic", "0"]) == 2
    output = capsys.readouterr().out
    assert "request count" in output


def test_serve_bench_cluster_rejects_bad_count(capsys):
    assert main(["serve-bench", "cluster", "zero"]) == 2
    assert main(["serve-bench", "cluster", "0"]) == 2
    output = capsys.readouterr().out
    assert "request count" in output


def test_serve_bench_seed_flag(capsys):
    assert main(["serve-bench", "24", "--seed", "7"]) == 0
    output = capsys.readouterr().out
    assert "requests          : 24" in output


def test_serve_bench_seed_flag_validation(capsys):
    assert main(["serve-bench", "--seed"]) == 2
    assert main(["serve-bench", "--seed", "many"]) == 2
    assert main(["serve-bench", "--seed", "-1"]) == 2
    output = capsys.readouterr().out
    assert "--seed expects an integer" in output
    assert "--seed must be >= 0" in output


def test_serve_bench_smoke_shrinks_the_run(capsys):
    assert main(["serve-bench", "--smoke"]) == 0
    output = capsys.readouterr().out
    assert "requests          : 24" in output


def test_serve_bench_cnn_rejects_bad_count(capsys):
    assert main(["serve-bench", "cnn", "zero"]) == 2
    assert main(["serve-bench", "cnn", "0"]) == 2
    output = capsys.readouterr().out
    assert "image count" in output


def test_unknown_command(capsys):
    assert main(["bogus"]) == 2
    output = capsys.readouterr().out
    assert "unknown command" in output
    assert "serve-bench" in output


def test_serve_bench_drift_smoke_writes_json(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["serve-bench", "drift", "--smoke", "--seed", "7"]) == 0
    output = capsys.readouterr().out
    assert "drift serve-bench" in output
    assert "unmonitored" in output and "probe_every" in output
    assert "(seed 7)" in output
    bench_json = tmp_path / "BENCH_drift.json"
    assert bench_json.exists()
    import json

    data = json.loads(bench_json.read_text())
    assert data["seed"] == 7
    configs = data["sweep"][0]["configs"]
    unmonitored = next(c for c in configs if c["cadence"] == 0)
    monitored = next(c for c in configs if c["cadence"] > 0)
    # Drift bites the unmonitored control; the policy recovers from it.
    assert unmonitored["final_code_error_rate"] > 0.0
    assert monitored["recalibrations"] >= 1
    assert monitored["recovered_bit_for_bit"]
    assert monitored["calibration_energy_nj"] > 0.0


def test_serve_bench_drift_rejects_bad_count(capsys):
    assert main(["serve-bench", "drift", "zero"]) == 2
    assert main(["serve-bench", "drift", "0"]) == 2
    output = capsys.readouterr().out
    assert "request count" in output


def test_serve_bench_profile_prints_hot_functions(capsys):
    assert main(["serve-bench", "--smoke", "--profile"]) == 0
    output = capsys.readouterr().out
    assert "profile (top" in output
    assert "cumtime s" in output


def test_serve_bench_trace_writes_chrome_json(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    trace_path = tmp_path / "trace.json"
    assert main(
        ["serve-bench", "cluster", "--smoke", "--seed", "3",
         "--profile", "--trace", str(trace_path)]
    ) == 0
    output = capsys.readouterr().out
    assert "profile (top" in output
    assert f"trace written to: {trace_path}" in output
    assert trace_path.exists()
    import json

    payload = json.loads(trace_path.read_text())
    assert payload["otherData"]["clock"] == "modelled"
    assert any(event.get("ph") == "X" for event in payload["traceEvents"])
    # The profile rows are merged into the benchmark JSON alongside the
    # sweep, and the traced run records latency quantiles per policy.
    data = json.loads((tmp_path / "BENCH_cluster.json").read_text())
    assert data["profile"][0]["cumtime_s"] >= data["profile"][-1]["cumtime_s"]
    assert all(
        policy["latency_quantiles"]["end_to_end"]["count"] > 0
        for entry in data["sweep"]
        for policy in entry["policies"].values()
    )


def test_serve_bench_trace_flag_validation(capsys):
    assert main(["serve-bench", "--trace"]) == 2
    assert main(["serve-bench", "--trace", "--smoke"]) == 2
    output = capsys.readouterr().out
    assert "expects an output path" in output


def test_serve_bench_drift_dashboard_writes_artifacts(
    capsys, tmp_path, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    assert main(
        ["serve-bench", "drift", "--smoke", "--seed", "2025",
         "--dashboard", "DASHBOARD_drift.html"]
    ) == 0
    output = capsys.readouterr().out
    assert "incident replay" in output
    assert "dashboard written to: DASHBOARD_drift.html" in output
    dashboard = (tmp_path / "DASHBOARD_drift.html").read_text()
    assert dashboard.startswith("<!DOCTYPE html>")
    assert "<svg" in dashboard
    import json

    data = json.loads((tmp_path / "BENCH_drift.json").read_text())
    incident = data["incident"]
    assert incident["severity"] == 1.5
    # The induced drift pages on the modelled clock...
    assert incident["fired_at"] is not None and incident["fired_at"] > 0.0
    assert any(
        alert["state"] == "firing" and alert["rule"] == "probe-error-burn"
        for alert in incident["alerts"]
    )
    # ...and the alert marker lands in the rendered dashboard.
    assert "alert-marker" in dashboard
    # The bundle artifact is standalone JSON next to the bench JSON.
    bundle = json.loads((tmp_path / "INCIDENT_drift.json").read_text())
    assert bundle["trigger"]["kind"] == "alert"
    assert any(span.get("cat") == "flush" for span in bundle["spans"])


def test_serve_bench_dashboard_flag_validation(capsys):
    assert main(["serve-bench", "--dashboard"]) == 2
    assert main(["serve-bench", "--dashboard", "--smoke"]) == 2
    output = capsys.readouterr().out
    assert "expects an output path" in output


def test_obs_command_renders_from_saved_artifacts(
    capsys, tmp_path, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    assert main(
        ["serve-bench", "drift", "--smoke", "--trace", "trace.json",
         "--dashboard", "live.html"]
    ) == 0
    capsys.readouterr()
    assert main(
        ["obs", "--trace", "trace.json", "--alerts", "BENCH_drift.json",
         "--out", "replay.html"]
    ) == 0
    output = capsys.readouterr().out
    assert "dashboard written to: replay.html" in output
    replay = (tmp_path / "replay.html").read_text()
    assert "alert-marker" in replay and "<svg" in replay


def test_obs_command_validation(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["obs"]) == 2
    assert main(["obs", "--trace"]) == 2
    assert main(["obs", "--trace", "missing.json"]) == 2
    assert main(["obs", "--bogus"]) == 2
    output = capsys.readouterr().out
    assert "expects --trace" in output
    assert "not found" in output
