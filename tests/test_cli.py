"""Tests for the ``python -m repro`` entry point."""

import pytest

from repro.__main__ import main


def test_default_summary(capsys):
    assert main([]) == 0
    output = capsys.readouterr().out
    assert "TOPS" in output and "This Work" in output


def test_demo(capsys):
    assert main(["demo"]) == 0
    output = capsys.readouterr().out
    assert "ADC codes" in output


def test_adc(capsys):
    assert main(["adc"]) == 0
    output = capsys.readouterr().out
    assert "V_IN" in output
    assert output.count("\n") >= 13


def test_serve_bench(capsys):
    assert main(["serve-bench", "24"]) == 0
    output = capsys.readouterr().out
    assert "inferences/s" in output
    assert "requests          : 24" in output
    assert "hit rate" in output


def test_serve_bench_cnn(capsys):
    assert main(["serve-bench", "cnn", "8"]) == 0
    output = capsys.readouterr().out
    assert "images/s" in output
    assert "conv program" in output
    assert "hit rate" in output


def test_serve_bench_cnn_rejects_bad_count(capsys):
    assert main(["serve-bench", "cnn", "zero"]) == 2
    assert main(["serve-bench", "cnn", "0"]) == 2
    output = capsys.readouterr().out
    assert "image count" in output


def test_unknown_command(capsys):
    assert main(["bogus"]) == 2
    output = capsys.readouterr().out
    assert "unknown command" in output
    assert "serve-bench" in output
