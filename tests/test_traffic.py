"""Tests for repro.traffic: arrival processes, workload mixes, SLOs,
the modelled-time traffic engine, the capacity search — and the
per-request ``deadline=`` semantics the engine drives through the
session/cluster front door."""

import numpy as np
import pytest

from repro.api import (
    FlushPolicy,
    MetricsRegistry,
    PhotonicCluster,
    PhotonicSession,
    RoutingPolicy,
    RunReport,
)
from repro.errors import ConfigurationError, DeadlineExceededError
from repro.telemetry import ModelClock
from repro.traffic import (
    SLO,
    Bursty,
    Diurnal,
    Poisson,
    Replay,
    Tenant,
    TokenBucket,
    TrafficEngine,
    WorkloadMix,
    find_capacity,
)

GRID = (8, 8)


def make_session(policy=None, max_batch=16, clock=None):
    return PhotonicSession(
        grid=GRID,
        max_batch=max_batch,
        flush_policy=policy if policy is not None else FlushPolicy.max_batch(16),
        metrics=MetricsRegistry(),
        clock=clock if clock is not None else ModelClock(),
    )


def make_cluster(policy=None, cores=2, routing="round_robin"):
    return PhotonicCluster(
        cores=cores,
        grid=GRID,
        max_batch=16,
        flush_policy=policy if policy is not None else FlushPolicy.max_batch(16),
        routing=RoutingPolicy(kind=routing),
        metrics=MetricsRegistry(),
        clock=ModelClock(),
    )


class TestArrivals:
    def test_poisson_is_seed_deterministic_and_sorted(self):
        first = Poisson(1e6).times(500, np.random.default_rng(7))
        again = Poisson(1e6).times(500, np.random.default_rng(7))
        np.testing.assert_array_equal(first, again)
        assert np.all(np.diff(first) >= 0.0) and first[0] > 0.0
        # Mean spacing tracks 1/rate to a few percent over 500 draws.
        assert first[-1] / 500 == pytest.approx(1e-6, rel=0.2)

    def test_replay_is_a_deterministic_grid(self):
        times = Replay(10.0).times(5, np.random.default_rng(0))
        np.testing.assert_allclose(times, [0.1, 0.2, 0.3, 0.4, 0.5])

    def test_diurnal_rate_swings_between_trough_and_peak(self):
        process = Diurnal(trough=10.0, peak=1000.0, period=1.0)
        assert 10.0 < process.mean_rate < 1000.0
        times = process.times(400, np.random.default_rng(3))
        assert np.all(np.diff(times) >= 0.0) and times.shape == (400,)

    def test_bursty_mean_rate_is_dwell_weighted(self):
        process = Bursty(quiet=10.0, burst=1000.0, quiet_dwell=3.0, burst_dwell=1.0)
        assert process.mean_rate == pytest.approx((10.0 * 3 + 1000.0 * 1) / 4)
        times = process.times(400, np.random.default_rng(4))
        assert np.all(np.diff(times) >= 0.0)

    def test_scaled_multiplies_the_rate(self):
        base = Poisson(100.0)
        doubled = base.scaled(2.0)
        assert doubled.mean_rate == pytest.approx(200.0)
        # Same seed, double rate: every arrival lands twice as early.
        first = base.times(50, np.random.default_rng(5))
        fast = doubled.times(50, np.random.default_rng(5))
        np.testing.assert_allclose(fast, first / 2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rate"):
            Poisson(0.0)
        with pytest.raises(ConfigurationError, match="rate"):
            Replay(-1.0)
        with pytest.raises(ConfigurationError):
            Bursty(quiet=1.0, burst=2.0, quiet_dwell=0.0, burst_dwell=1.0)
        with pytest.raises(ConfigurationError):
            Poisson(10.0).scaled(0.0)


class TestWorkload:
    def test_token_bucket_enforces_rate_and_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.admit(0.0) and bucket.admit(0.0)   # burst drains
        assert not bucket.admit(0.0)                      # empty
        assert bucket.admit(0.1)                          # 1 token refilled
        assert not bucket.admit(0.1)

    def test_tenant_validation(self):
        with pytest.raises(ConfigurationError, match="share"):
            Tenant(name="t", share=0.0, shape=(4, 6))
        with pytest.raises(ConfigurationError):
            Tenant(name="t", share=1.0, shape=(4, 6), deadline_s=-1.0)

    def test_zipf_mix_shares_normalise(self):
        mix = WorkloadMix.zipf(tenants=4, rows=8, columns=8)
        assert len(mix.tenants) == 4
        assert sum(mix.shares) == pytest.approx(1.0)
        # Zipf: tenant 0 twice as popular as tenant 1.
        assert mix.shares[0] == pytest.approx(2.0 * mix.shares[1])

    def test_sample_is_seed_deterministic(self):
        mix = WorkloadMix.zipf(tenants=3, rows=8, columns=8)
        first = mix.sample(200, np.random.default_rng(9))
        again = mix.sample(200, np.random.default_rng(9))
        np.testing.assert_array_equal(first, again)
        assert set(np.unique(first)) <= {0, 1, 2}


class TestSLO:
    def test_met(self):
        slo = SLO(p99_latency=1e-3, deadline_miss_budget=0.01)
        assert slo.met(p99=5e-4, miss_rate=0.0)
        assert not slo.met(p99=2e-3, miss_rate=0.0)
        assert not slo.met(p99=5e-4, miss_rate=0.05)
        assert slo.met(p99=None, miss_rate=0.0)

    def test_flush_policy_composes_both_limits(self):
        policy = SLO(p99_latency=1e-3).flush_policy(batch_limit=32)
        assert policy.batch_limit == 32
        assert policy.deadline_headroom == pytest.approx(1e-4)
        assert policy.delay_limit == pytest.approx(5e-4)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="p99"):
            SLO(p99_latency=0.0)
        with pytest.raises(ConfigurationError, match="budget"):
            SLO(p99_latency=1.0, deadline_miss_budget=1.0)


class TestTrafficEngine:
    def test_session_run_is_reproducible_and_accounted(self):
        mix = WorkloadMix.zipf(tenants=2, rows=8, columns=8)
        summaries = []
        for _ in range(2):
            engine = TrafficEngine(
                make_session(), mix, Poisson(1e9), slo=None, seed=11
            )
            summaries.append(engine.run(300))
        first, again = summaries
        assert first == again                      # bit-for-bit reproducible
        assert first["offered"] == 300
        assert first["admitted"] == first["offered"] - first["rate_limited"]
        assert (
            first["resolved"]
            == first["admitted"] - first["deadline_misses"]
        )
        assert first["throughput_per_s"] > 0.0
        assert first["p99_e2e_s"] > 0.0
        assert set(first["tenants"]) == {"tenant-0", "tenant-1"}
        for split in first["tenants"].values():
            assert split["queue_wait"]["count"] > 0 or split["service"]["count"] > 0

    def test_cluster_run_spreads_over_cores(self):
        mix = WorkloadMix.zipf(tenants=2, rows=8, columns=8)
        cluster = make_cluster(cores=2)
        engine = TrafficEngine(cluster, mix, Poisson(1e10), slo=None, seed=12)
        summary = engine.run(300)
        assert summary["resolved"] == summary["admitted"]
        report = cluster.report()
        assert report.total.requests == summary["admitted"]
        assert all(core.requests > 0 for core in report.per_core)

    def test_token_bucket_sheds_over_limit_tenants(self):
        tenant = Tenant(
            name="capped", share=1.0, shape=(4, 6), rate_limit=1e3, burst=1.0
        )
        engine = TrafficEngine(
            make_session(), WorkloadMix((tenant,)), Poisson(1e9), seed=13
        )
        summary = engine.run(100)
        # Offered a million times over the cap: nearly everything sheds.
        assert summary["rate_limited"] > 90
        assert summary["resolved"] == summary["admitted"]

    def test_engine_requires_modelled_clock_and_metrics(self):
        mix = WorkloadMix.zipf(tenants=1, rows=8, columns=8)
        wall = PhotonicSession(grid=GRID, metrics=MetricsRegistry())
        with pytest.raises(ConfigurationError, match="clock"):
            TrafficEngine(wall, mix, Poisson(1.0))
        blind = PhotonicSession(grid=GRID, clock=ModelClock())
        with pytest.raises(ConfigurationError, match="telemetry|metrics"):
            TrafficEngine(blind, mix, Poisson(1.0))

    def test_slo_aware_policy_beats_max_batch_on_misses(self):
        """The acceptance head-to-head: at an offered rate whose
        batch-fill time dwarfs the deadline, plain max_batch rides
        requests past their deadline while the SLO-derived policy
        flushes early."""
        deadline = 1e-6
        mix = WorkloadMix.zipf(tenants=2, rows=8, columns=8, deadline_s=deadline)
        slo = SLO(p99_latency=2.5e-7, deadline_miss_budget=0.01)
        rate = 16 / (2.0 * deadline)    # batch fill ~2x the deadline
        results = {}
        for label, policy in (
            ("max_batch", FlushPolicy.max_batch(16)),
            ("slo_aware", slo.flush_policy(batch_limit=16)),
        ):
            engine = TrafficEngine(
                make_session(policy), mix, Poisson(rate), slo=slo, seed=21
            )
            results[label] = engine.run(400)
        assert results["max_batch"]["deadline_misses"] > 100
        assert (
            results["slo_aware"]["deadline_misses"]
            < results["max_batch"]["deadline_misses"] / 10
        )
        assert results["slo_aware"]["p99_e2e_s"] < deadline
        assert results["slo_aware"]["slo_met"]


class TestFindCapacity:
    def test_bisects_to_the_knee(self):
        mix = WorkloadMix.zipf(tenants=2, rows=8, columns=8, deadline_s=5e-8)
        slo = SLO(p99_latency=5e-8, deadline_miss_budget=0.0)

        def factory():
            return make_session(slo.flush_policy(batch_limit=16))

        # Probe the target's raw capacity first so the search starts
        # near the knee and the bracket stays narrow.
        probe = TrafficEngine(
            make_session(), WorkloadMix.zipf(tenants=2, rows=8, columns=8),
            Poisson(1e12), seed=7,
        ).run(800)
        result = find_capacity(
            factory, mix, Poisson(probe["throughput_per_s"]), slo,
            requests=800, seed=7, resolution=0.2,
        )
        assert result["saturated"]
        assert result["capacity_per_s"] > 0.0
        assert result["sustained"]["slo_met"]
        verdicts = [trial["slo_met"] for trial in result["trials"]]
        assert True in verdicts and False in verdicts
        # The returned capacity is the highest *passing* probe.
        passing = [
            trial["offered_rate_per_s"]
            for trial in result["trials"]
            if trial["slo_met"]
        ]
        assert result["capacity_per_s"] == pytest.approx(max(passing), rel=0.05)

    def test_impossible_slo_reports_zero_capacity(self):
        mix = WorkloadMix.zipf(tenants=1, rows=8, columns=8, deadline_s=1e-15)
        slo = SLO(p99_latency=1e-15)
        result = find_capacity(
            lambda: make_session(slo.flush_policy(batch_limit=16)),
            mix, Poisson(1e9), slo, requests=50, seed=7, max_doublings=2,
        )
        assert result["saturated"] and result["capacity_per_s"] == 0.0
        assert result["sustained"] is None


class TestDeadlineEdges:
    """Satellite: deadline edge cases at the session/report layer."""

    @pytest.fixture()
    def request_pair(self):
        rng = np.random.default_rng(0)
        return rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6)

    @pytest.mark.parametrize("deadline", [0.0, -1.0])
    def test_expired_at_submit_sheds_without_queueing(
        self, request_pair, deadline
    ):
        weights, x = request_pair
        session = make_session(FlushPolicy.explicit())
        future = session.submit(weights, x, deadline=deadline)
        assert future.expired and session.pending == 0
        with pytest.raises(DeadlineExceededError):
            future.result()
        report = session.report()
        # A submit-time shed never counts as a served request.
        assert report.requests == 0 and report.deadline_misses == 1

    def test_deadline_fires_mid_coalesced_batch(self, request_pair):
        weights, x = request_pair
        session = make_session(FlushPolicy.explicit())
        tight = session.submit(weights, x, deadline=1e-12)
        free = session.submit(weights, x)
        assert session.flush() == 1      # only the free request resolves
        assert tight.expired and free.done
        with pytest.raises(DeadlineExceededError):
            tight.result()
        assert free.value.shape == (4,)
        report = session.report()
        assert report.requests == 2 and report.deadline_misses == 1

    def test_combined_preserves_misses_across_empty_flushes(
        self, request_pair
    ):
        weights, x = request_pair
        submit_shed = make_session(FlushPolicy.explicit())
        submit_shed.submit(weights, x, deadline=-1.0)
        assert submit_shed.flush() == 0               # empty flush
        partial = make_session(FlushPolicy.explicit())
        partial.submit(weights, x, deadline=1e-12)
        partial.submit(weights, x)
        partial.flush()                               # partial flush
        combo = RunReport.combined(
            [submit_shed.report(), partial.report(), RunReport.combined([])]
        )
        assert combo.deadline_misses == 2
        assert combo.requests == 2

    def test_cluster_threads_deadlines_to_cores(self, request_pair):
        weights, x = request_pair
        cluster = make_cluster()
        expired = cluster.submit(weights, x, deadline=0.0)
        assert expired.expired
        live = cluster.submit(weights, x, deadline=10.0, tenant="vip")
        cluster.flush()
        assert live.done and not live.expired
        assert cluster.report().total.deadline_misses == 1

    def test_next_deadline_tracks_the_most_urgent_request(self, request_pair):
        weights, x = request_pair
        cluster = make_cluster()
        assert cluster.next_deadline is None
        cluster.submit(weights, x, deadline=5.0)
        cluster.submit(weights, x, deadline=2.0)
        assert cluster.next_deadline == pytest.approx(2.0)
        cluster.flush()
        assert cluster.next_deadline is None


class TestModelledClockPolicies:
    """Satellite: max_delay / poll() honour an injected clock source
    instead of the host wall clock."""

    @pytest.fixture()
    def request_pair(self):
        rng = np.random.default_rng(1)
        return rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6)

    def test_max_delay_waits_for_the_modelled_clock(self, request_pair):
        weights, x = request_pair
        clock = ModelClock()
        session = make_session(FlushPolicy.max_delay(1.0), clock=clock)
        session.submit(weights, x)
        # Host time passes; modelled time does not: no flush.
        assert session.poll() == 0 and session.pending == 1
        clock.now = 2.0
        assert session.poll() == 1 and session.pending == 0

    def test_callable_clock_source(self, request_pair):
        weights, x = request_pair
        t = [0.0]
        session = make_session(FlushPolicy.max_delay(0.5), clock=lambda: t[0])
        session.submit(weights, x)
        assert session.poll() == 0
        t[0] = 1.0
        assert session.poll() == 1

    def test_oldest_pending_at_reads_the_injected_clock(self, request_pair):
        weights, x = request_pair
        clock = ModelClock()
        clock.now = 42.0
        session = make_session(FlushPolicy.explicit(), clock=clock)
        assert session.oldest_pending_at is None
        session.submit(weights, x)
        assert session.oldest_pending_at == pytest.approx(42.0)


class TestFleetFlushOrder:
    """Satellite: the fleet flush order breaks priority ties
    deterministically by submit order, then core index."""

    def test_ties_break_by_submit_order(self):
        rng = np.random.default_rng(2)
        weights = rng.integers(0, 8, (4, 6))
        cluster = make_cluster(cores=3, routing="round_robin")
        # Same priority everywhere; round-robin lands one request per
        # core in submit order 0, 1, 2.
        for _ in range(3):
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=1)
        assert cluster._flush_order() == [0, 1, 2]

    def test_priority_still_dominates(self):
        rng = np.random.default_rng(3)
        weights = rng.integers(0, 8, (4, 6))
        cluster = make_cluster(cores=3, routing="round_robin")
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=0)
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=5)
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=5)
        # Priority first; the 5s tie-break by submit order (core 1
        # received its priority-5 request before core 2).
        assert cluster._flush_order() == [1, 2, 0]
