"""Unit tests for photodiodes and the balanced thresholding pair."""

import numpy as np
import pytest

from repro.config import PhotodiodeSpec
from repro.errors import ConfigurationError
from repro.photonics.photodiode import BalancedPhotodiodePair, Photodiode
from repro.photonics.signal import WDMSignal


def test_current_linear_in_power():
    pd = Photodiode(PhotodiodeSpec(responsivity=0.8, dark_current=0.0))
    assert pd.current(100e-6) == pytest.approx(80e-6)
    assert pd.current(2 * 100e-6) == pytest.approx(2 * 80e-6)


def test_dark_current_floor():
    pd = Photodiode(PhotodiodeSpec(dark_current=10e-9))
    assert pd.current(0.0) == pytest.approx(10e-9)


def test_negative_power_rejected():
    with pytest.raises(ConfigurationError):
        Photodiode().current(-1e-6)


def test_broadband_response_sums_carriers():
    """pSRAM photodiodes add the hold bias and write wavelengths."""
    pd = Photodiode(PhotodiodeSpec(responsivity=0.8, dark_current=0.0))
    signal = WDMSignal([1310.5e-9, 1304e-9], [10e-6, 1e-3])
    assert pd.current_from_signal(signal) == pytest.approx(0.8 * 1.01e-3)


def test_shot_noise_scales_with_sqrt_power():
    pd = Photodiode()
    low = pd.shot_noise_sigma(10e-6, bandwidth=10e9)
    high = pd.shot_noise_sigma(40e-6, bandwidth=10e9)
    assert high == pytest.approx(2.0 * low, rel=0.05)


def test_noisy_current_statistics():
    pd = Photodiode(PhotodiodeSpec(responsivity=0.8, dark_current=0.0))
    rng = np.random.default_rng(0)
    samples = [pd.noisy_current(200e-6, rng, bandwidth=10e9) for _ in range(400)]
    assert np.mean(samples) == pytest.approx(0.8 * 200e-6, rel=0.01)
    assert np.std(samples) > 0.0


def test_balanced_pair_sign_convention():
    pair = BalancedPhotodiodePair()
    assert pair.net_current(200e-6, 18e-6) > 0.0  # upper wins: node up
    assert pair.net_current(10e-6, 18e-6) < 0.0  # reference wins: node down


def test_balanced_pair_discharge_predicate():
    """The eoADC activation condition: reference diode wins."""
    pair = BalancedPhotodiodePair()
    assert pair.discharges(upper_power=10e-6, lower_power=18e-6)
    assert not pair.discharges(upper_power=100e-6, lower_power=18e-6)


def test_network_sink_records_power():
    pd = Photodiode()
    pd.propagate_ports({"in": WDMSignal.single(1310e-9, 5e-6)})
    assert pd.last_input_power == pytest.approx(5e-6)
