"""Tests for the compiled vectorized fast path (repro.runtime.engine)."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.runtime.engine import BatchResult, CompiledCore, weight_key


@pytest.fixture(scope="module")
def device(tech):
    return PhotonicTensorCore(rows=4, columns=6, weight_bits=3, technology=tech)


def test_codes_match_device_on_randomized_pairs(device):
    """Acceptance: batched codes exactly equal the per-call device loop
    on >= 100 randomized (weights, input) pairs, across gains."""
    rng = np.random.default_rng(42)
    for trial in range(100):
        device.load_weight_matrix(rng.integers(0, 8, (4, 6)))
        engine = device.compile()
        x = rng.uniform(0.0, 1.0, 6)
        gain = float(rng.uniform(0.5, 3.0))
        loop = device.matvec(x, gain=gain)
        fast = engine.matvec(x, gain=gain)
        assert np.array_equal(loop.codes, fast.codes), f"trial {trial}"
        assert np.allclose(loop.estimates, fast.estimates)
        assert np.allclose(loop.currents, fast.currents)


def test_batched_matmul_matches_per_call(device):
    rng = np.random.default_rng(7)
    device.load_weight_matrix(rng.integers(0, 8, (4, 6)))
    engine = device.compile()
    batch = rng.uniform(0.0, 1.0, (6, 16))
    result = engine.matmul(batch, gain=1.5)
    assert isinstance(result, BatchResult)
    assert result.codes.shape == (4, 16)
    assert result.batch_size == 16
    for col in range(16):
        loop = device.matvec(batch[:, col], gain=1.5)
        assert np.array_equal(result.codes[:, col], loop.codes)
        assert np.allclose(result.estimates[:, col], loop.estimates)
    # Estimates also match the device's own matmul gain passthrough.
    assert np.allclose(result.estimates, device.matmul(batch, gain=1.5))


def test_compiled_snapshot_is_detached(device):
    rng = np.random.default_rng(9)
    first = rng.integers(0, 8, (4, 6))
    device.load_weight_matrix(first)
    engine = device.compile()
    x = rng.uniform(0.0, 1.0, 6)
    before = engine.matvec(x)
    device.load_weight_matrix(rng.integers(0, 8, (4, 6)))
    after = engine.matvec(x)
    assert np.array_equal(before.codes, after.codes)
    assert np.array_equal(engine.weight_matrix, first)


def test_dequantize_matches_core(device):
    rng = np.random.default_rng(10)
    device.load_weight_matrix(rng.integers(0, 8, (4, 6)))
    engine = device.compile()
    codes = np.array([0, 3, 7, 5])
    assert np.array_equal(engine.dequantize_codes(codes), device.dequantize_codes(codes))


def test_batch_result_column_view(device):
    rng = np.random.default_rng(12)
    device.load_weight_matrix(rng.integers(0, 8, (4, 6)))
    engine = device.compile()
    batch = rng.uniform(0.0, 1.0, (6, 3))
    result = engine.matmul(batch)
    view = result.column(1)
    assert np.array_equal(view.codes, result.codes[:, 1])
    assert np.array_equal(view.estimates, result.estimates[:, 1])


def test_validation_reports_offending_shape(device):
    engine = device.compile()
    with pytest.raises(ConfigurationError, match=r"\(3,\)"):
        engine.matvec(np.ones(3))
    with pytest.raises(ConfigurationError, match=r"\(3, 2\)"):
        engine.matmul(np.ones((3, 2)))
    with pytest.raises(ConfigurationError, match="1.5"):
        engine.matmul(np.full((6, 2), 1.5))
    with pytest.raises(ConfigurationError, match="gain"):
        engine.matmul(np.ones((6, 2)) * 0.5, gain=0.0)


def test_code_boundaries_reproduce_convert(ideal_adc, trimmed_adc):
    for adc in (ideal_adc, trimmed_adc):
        boundaries = adc.code_boundaries()
        assert boundaries.shape == (adc.levels - 1,)
        assert np.all(np.diff(boundaries) > 0)
        sweep = np.linspace(0.0, adc.spec.full_scale_voltage - 1e-6, 801)
        binned = np.searchsorted(boundaries, sweep, side="right")
        device = np.array([adc.convert(float(v)) for v in sweep])
        assert np.array_equal(binned, device)
        # Cached: the second call returns the identical array object.
        assert adc.code_boundaries() is boundaries


def test_weight_key_canonical():
    matrix = np.arange(6).reshape(2, 3)
    assert weight_key(matrix) == weight_key(matrix.astype(np.int8))
    assert weight_key(matrix) != weight_key(matrix.reshape(3, 2))
    assert weight_key(matrix) != weight_key(matrix + 1)


def test_core_exposes_calibration_constants(device):
    assert device.tia_gain > 0.0
    assert device.full_scale_current > 0.0
    engine = device.compile()
    assert engine.response.shape == (4, 6)
    assert np.all(engine.response >= 0.0)
