"""Unit tests for WDM channel planning and crosstalk analysis."""

import numpy as np
import pytest

from repro.core.multiplier import OneBitPhotonicMultiplier
from repro.errors import ConfigurationError
from repro.photonics.wdm import (
    ChannelPlan,
    crosstalk_matrix,
    usable_channels,
    worst_case_crosstalk_db,
)


def test_channel_plan_grid():
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 4)
    assert plan.wavelength(0) == pytest.approx(1310.5e-9)
    assert plan.wavelength(3) == pytest.approx(1310.5e-9 + 3 * 2.33e-9)
    assert plan.span() == pytest.approx(3 * 2.33e-9)


def test_channel_plan_bounds():
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 4)
    with pytest.raises(ConfigurationError):
        plan.wavelength(4)
    with pytest.raises(ConfigurationError):
        ChannelPlan(1310.5e-9, 0.0, 4)


def test_usable_channels_paper_example():
    """Paper Section III: 9 nm FSR / 2 nm spacing -> 4 channels."""
    assert usable_channels(9e-9, 2e-9) == 4
    assert usable_channels(9.36e-9, 2.33e-9) == 4


def test_plan_fits_in_fsr():
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 4)
    assert plan.fits_in_fsr(9.36e-9)
    assert not plan.fits_in_fsr(9.0e-9)


@pytest.fixture(scope="module")
def channel_rings(tech):
    rings = []
    for index in range(4):
        multiplier = OneBitPhotonicMultiplier(channel_index=index, technology=tech)
        multiplier.bit = 0  # resonant at its own channel
        rings.append(multiplier.ring)
    return rings


def test_crosstalk_matrix_diagonal_is_notch(channel_rings):
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 4)
    matrix = crosstalk_matrix(channel_rings, plan)
    assert matrix.shape == (4, 4)
    assert np.all(np.diag(matrix) < 0.01)
    off_diagonal = matrix[~np.eye(4, dtype=bool)]
    assert np.all(off_diagonal > 0.99)  # neighbours nearly transparent


def test_crosstalk_matrix_requires_one_ring_per_channel(channel_rings):
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 3)
    with pytest.raises(ConfigurationError):
        crosstalk_matrix(channel_rings, plan)


def test_worst_case_crosstalk_small(channel_rings):
    """Paper Section IV-B: 2.33 nm separation ensures minimal crosstalk."""
    plan = ChannelPlan(1310.5e-9, 2.33e-9, 4)
    matrix = crosstalk_matrix(channel_rings, plan)
    worst = worst_case_crosstalk_db(matrix)
    assert worst > -0.1  # less than 0.1 dB parasitic attenuation


def test_worst_case_crosstalk_validates_shape():
    with pytest.raises(ConfigurationError):
        worst_case_crosstalk_db(np.ones((2, 3)))
