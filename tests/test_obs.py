"""Tests for repro.obs: alert rules over sliding modelled-time
windows, the Observer lifecycle, the flight recorder, the Prometheus
exporter and the HTML dashboard — plus the two load-bearing
guarantees:

* with an Observer attached, an induced drift incident fires a
  burn-rate alert on the modelled clock, dumps a self-contained bundle
  whose trailing spans include the offending flushes, and renders a
  dashboard with the alert marked;
* without one, every serving surface makes zero obs calls and every
  value and report is bit-for-bit identical.
"""

import json

import numpy as np
import pytest

from repro.api import (
    FlushPolicy,
    MetricsRegistry,
    PhotonicCluster,
    PhotonicSession,
    RoutingPolicy,
    RunReport,
)
from repro.errors import ClusterSaturatedError, ConfigurationError
from repro.health import HealthPolicy
from repro.obs import (
    CacheHitCollapseRule,
    DeadlineMissBurnRule,
    EventSample,
    FlightRecorder,
    HealthSample,
    LatencyBurnRule,
    LatencyShiftRule,
    MetricSample,
    Observer,
    ProbeErrorBurnRule,
    ShedSpikeRule,
    WindowView,
    default_rules,
    prometheus_text,
    render_dashboard,
    save_dashboard,
    slo_burn_rules,
)
from repro.runtime.serving import drift_suite, synthetic_trace
from repro.telemetry import ModelClock, TraceRecorder
from repro.traffic import SLO, Poisson, TrafficEngine, WorkloadMix

GRID = (8, 8)


def _sample(at, **kwargs):
    return MetricSample(at=at, source="core", **kwargs)


def _view(samples=(), health=(), events=(), now=10.0, window_s=10.0):
    return WindowView(samples, health, events, now=now, window_s=window_s)


# -- WindowView --------------------------------------------------------------
class TestWindowView:
    def test_filters_strictly_inside_the_window(self):
        samples = [
            _sample(0.0, requests=8),   # exactly at the cutoff: excluded
            _sample(1.0, requests=4),
            _sample(9.0, requests=2),
        ]
        view = _view(samples, now=10.0, window_s=10.0)
        assert view.requests == 6
        narrow = _view(samples, now=10.0, window_s=2.0)
        assert narrow.requests == 2

    def test_rates_are_none_on_empty_windows(self):
        view = _view()
        assert view.miss_rate() is None
        assert view.hit_rate() is None
        assert view.p99() is None
        assert view.probe_error_rate() is None

    def test_aggregates(self):
        samples = [
            _sample(1.0, requests=8, deadline_misses=2, cache_hits=3,
                    cache_misses=1, p99_latency=2e-6),
            _sample(2.0, requests=2, p99_latency=5e-6),
        ]
        health = [
            HealthSample(at=1.0, source="core", code_error_rate=0.1),
            HealthSample(at=2.0, source="core", code_error_rate=0.3),
        ]
        events = [
            EventSample(at=1.5, kind="shed"),
            EventSample(at=1.6, kind="drain"),
        ]
        view = _view(samples, health, events)
        assert view.miss_rate() == pytest.approx(0.2)
        assert view.hit_rate() == pytest.approx(0.75)
        assert view.p99() == 5e-6       # worst per-flush p99, not mean
        assert view.probe_error_rate() == pytest.approx(0.2)
        assert view.shed_events == 1    # drains don't count as sheds


# -- rules -------------------------------------------------------------------
class TestRules:
    def test_burn_rate_needs_both_windows(self):
        rule = DeadlineMissBurnRule(
            budget=0.1, window_s=10.0, short_window_s=2.0, threshold=1.0
        )
        # An old burn that stopped: the long window still breaches but
        # the short one is clean, so the rule must not fire.
        samples = [_sample(1.0, requests=10, deadline_misses=5),
                   _sample(9.5, requests=10)]

        def view_at(window_s):
            return _view(samples, now=10.0, window_s=window_s)

        verdict = rule.evaluate(view_at)
        assert not verdict.firing
        assert verdict.value == pytest.approx(0.0)  # short-window burn

        # A current burn breaches both windows.
        burning = [_sample(1.0, requests=10, deadline_misses=5),
                   _sample(9.5, requests=10, deadline_misses=5)]

        def burning_view_at(window_s):
            return _view(burning, now=10.0, window_s=window_s)

        verdict = rule.evaluate(burning_view_at)
        assert verdict.firing
        assert verdict.value == pytest.approx(5.0)

    def test_zero_miss_budget_burns_infinitely_on_any_miss(self):
        rule = DeadlineMissBurnRule(budget=0.0, window_s=10.0,
                                    short_window_s=10.0)
        view = _view([_sample(1.0, requests=100, deadline_misses=1)])
        assert rule.measure(view) == float("inf")
        clean = _view([_sample(1.0, requests=100)])
        assert rule.measure(clean) == 0.0

    def test_latency_burn_is_p99_over_target(self):
        rule = LatencyBurnRule(p99_target_s=1e-6, window_s=10.0,
                               short_window_s=10.0)
        view = _view([_sample(1.0, requests=4, p99_latency=3e-6)])
        assert rule.measure(view) == pytest.approx(3.0)

    def test_latency_shift_needs_baseline_mass(self):
        rule = LatencyShiftRule(window_s=2.0, baseline_window_s=10.0,
                                threshold=2.0, min_count=8)
        thin = [_sample(1.0, requests=2, p99_latency=1e-6),
                _sample(9.0, requests=2, p99_latency=9e-6)]

        def view_at_thin(window_s):
            return _view(thin, now=10.0, window_s=window_s)

        assert not rule.evaluate(view_at_thin).firing  # under min_count

        heavy = [_sample(1.0, requests=8, p99_latency=1e-6),
                 _sample(9.0, requests=8, p99_latency=9e-6)]

        def view_at_heavy(window_s):
            return _view(heavy, now=10.0, window_s=window_s)

        verdict = rule.evaluate(view_at_heavy)
        assert verdict.firing
        assert verdict.value == pytest.approx(9.0)

    def test_cache_collapse_fires_below_floor_with_enough_lookups(self):
        rule = CacheHitCollapseRule(window_s=10.0, threshold=0.25,
                                    min_lookups=8)
        thin = _view([_sample(1.0, cache_hits=0, cache_misses=4)])
        assert rule.measure(thin) is None  # too few lookups to mean it
        collapsed = _view([_sample(1.0, cache_hits=1, cache_misses=9)])
        assert rule._breaches(rule.measure(collapsed))
        healthy = _view([_sample(1.0, cache_hits=9, cache_misses=1)])
        assert not rule._breaches(rule.measure(healthy))

    def test_shed_spike_counts_sheds_and_misses(self):
        rule = ShedSpikeRule(window_s=10.0, threshold=3.0)
        events = [EventSample(at=1.0, kind="shed")] * 2
        view = _view([_sample(2.0, requests=4, deadline_misses=1)],
                     events=events)
        assert rule.measure(view) == 3.0
        assert rule._breaches(3.0)

    def test_probe_error_budget_validation(self):
        with pytest.raises(ConfigurationError):
            ProbeErrorBurnRule(budget=0.0)
        with pytest.raises(ConfigurationError):
            ProbeErrorBurnRule(budget=1.0)
        with pytest.raises(ConfigurationError):
            DeadlineMissBurnRule(budget=-0.1)

    def test_slo_burn_rules_shape(self):
        rules = slo_burn_rules(
            SLO(p99_latency=1e-6, deadline_miss_budget=0.01), window_s=60.0
        )
        names = [rule.name for rule in rules]
        assert names == ["slo-miss-burn-fast", "slo-miss-burn-slow",
                         "slo-latency-burn-fast", "slo-latency-burn-slow"]
        fast, slow = rules[0], rules[1]
        assert fast.severity == "page" and slow.severity == "warn"
        assert fast.threshold == 14.4 and slow.threshold == 6.0
        assert slow.window_s == 6.0 * fast.window_s
        assert fast.short_window_s == pytest.approx(fast.window_s / 12.0)
        with pytest.raises(ConfigurationError):
            slo_burn_rules("not an slo")

    def test_default_rules_with_and_without_slo(self):
        bare = default_rules(window_s=60.0)
        assert [type(rule).__name__ for rule in bare] == [
            "LatencyShiftRule", "CacheHitCollapseRule", "ShedSpikeRule",
            "ProbeErrorBurnRule",
        ]
        full = default_rules(SLO(p99_latency=1e-6), window_s=60.0)
        assert len(full) == len(bare) + 4


# -- Observer ----------------------------------------------------------------
class TestObserver:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="not both"):
            Observer(rules=[ShedSpikeRule()], slo=SLO(p99_latency=1e-6))
        with pytest.raises(ConfigurationError, match="unique"):
            Observer(rules=[ShedSpikeRule(), ShedSpikeRule()])
        with pytest.raises(ConfigurationError, match="AlertRule"):
            Observer(rules=["shed-spike"])
        with pytest.raises(ConfigurationError, match="FlightRecorder"):
            Observer(recorder="ring")
        with pytest.raises(ConfigurationError, match="window_s"):
            Observer(window_s=0.0)

    def test_fires_and_resolves_on_the_modelled_clock(self):
        observer = Observer(rules=[ShedSpikeRule(window_s=10.0,
                                                 threshold=2.0)])
        observer.note_event(1.0, "shed")
        assert observer.active == ()
        observer.note_event(2.5, "shed")
        assert [alert.rule for alert in observer.active] == ["shed-spike"]
        fired = observer.active[0]
        assert fired.state == "firing"
        assert fired.at == 2.5 and fired.fired_at == 2.5
        # 20 modelled seconds later both sheds have aged out of the
        # window, so the alert resolves with its episode intact.
        observer.note_event(22.5, "noop")
        assert observer.active == ()
        states = [(alert.state, alert.at) for alert in observer.alerts]
        assert states == [("firing", 2.5), ("resolved", 22.5)]
        assert observer.alerts[1].fired_at == 2.5

    def test_incident_events_dump_bundles(self):
        observer = Observer(rules=[], recorder=FlightRecorder(capacity=8))
        observer.note_event(1.0, "restore")          # not an incident kind
        assert observer.incidents == ()
        observer.note_event(2.0, "drain", {"core": 0})
        assert len(observer.incidents) == 1
        bundle = observer.incidents[0]
        assert bundle.at == 2.0
        assert bundle.trigger["kind"] == "event"
        assert bundle.trigger["event"]["kind"] == "drain"
        # The ring window holds both records, oldest first.
        kinds = [record["kind"] for record in bundle.window]
        assert kinds == ["restore", "drain"]

    def test_firing_alert_dumps_bundle_with_fleet_snapshot(self):
        observer = Observer(
            rules=[ShedSpikeRule(window_s=10.0, threshold=1.0)],
            recorder=FlightRecorder(capacity=8),
        )
        observer.attach_fleet(lambda: {"cores": 2, "pending": 5})
        observer.note_event(1.0, "shed")
        assert len(observer.incidents) == 1
        bundle = observer.incidents[0]
        assert bundle.trigger["kind"] == "alert"
        assert bundle.trigger["alert"]["rule"] == "shed-spike"
        assert bundle.fleet == {"cores": 2, "pending": 5}
        assert [alert["rule"] for alert in bundle.active_alerts] == [
            "shed-spike"
        ]

    def test_to_dict_summarizes(self):
        observer = Observer(slo=SLO(p99_latency=1e-6), window_s=30.0)
        payload = observer.to_dict()
        assert payload["window_s"] == 30.0
        assert len(payload["rules"]) == 8
        assert payload["alerts"] == [] and payload["active"] == []
        assert payload["incidents"] == 0


# -- FlightRecorder ----------------------------------------------------------
class TestFlightRecorder:
    def test_ring_caps_and_bundle_save(self, tmp_path):
        recorder = FlightRecorder(capacity=4, max_incidents=2)
        for index in range(10):
            recorder.observe(EventSample(at=float(index), kind="tick"))
        assert len(recorder) == 4
        first = recorder.dump(10.0, {"kind": "alert"})
        assert first is not None
        assert [record["at"] for record in first.window] == [6.0, 7.0,
                                                             8.0, 9.0]
        assert recorder.dump(11.0, {"kind": "alert"}) is not None
        # Past max_incidents a flapping alert dumps nothing more.
        assert recorder.dump(12.0, {"kind": "alert"}) is None
        assert len(recorder.incidents) == 2

        path = first.save(tmp_path / "bundle.json")
        payload = json.loads(path.read_text())
        assert payload["at"] == 10.0
        assert payload["trigger"] == {"kind": "alert"}
        assert len(payload["window"]) == 4

    def test_trailing_spans_come_from_the_trace(self):
        trace = TraceRecorder()
        pid = trace.process("p")
        tid = trace.thread(pid, "t")
        for index in range(6):
            trace.complete(f"flush #{index}", "flush", pid, tid,
                           float(index), 0.5)
        recorder = FlightRecorder(trace=trace, span_tail=3)
        bundle = recorder.dump(6.0, {"kind": "alert"})
        names = [span["name"] for span in bundle.spans]
        assert names == ["flush #3", "flush #4", "flush #5"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(span_tail=-1)
        with pytest.raises(ConfigurationError):
            FlightRecorder(max_incidents=0)


# -- Prometheus exporter -----------------------------------------------------
class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("pending").set(2)
        hist = registry.histogram("end_to_end_s", lo=1e-6, hi=1e-3)
        hist.observe_many([2e-6, 5e-6, 2e-4])
        text = prometheus_text(registry)
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 3" in text
        assert "# TYPE repro_pending gauge" in text
        assert "repro_pending 2.0" in text
        assert "# TYPE repro_end_to_end_s histogram" in text
        assert 'repro_end_to_end_s_bucket{le="+Inf"} 3' in text
        assert "repro_end_to_end_s_count 3" in text
        # Cumulative buckets never decrease.
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_end_to_end_s_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 3

    def test_underflow_folds_into_finite_buckets(self):
        registry = MetricsRegistry()
        registry.histogram("h", lo=1e-3, hi=1e-2, per_decade=1).observe(1e-6)
        text = prometheus_text(registry)
        lines = [line for line in text.splitlines()
                 if line.startswith("repro_h_bucket")]
        # The underflow observation is <= every finite edge, so each
        # cumulative bucket (and +Inf) already counts it.
        assert all(line.endswith(" 1") for line in lines)

    def test_tenant_split_becomes_a_label(self):
        registry = MetricsRegistry()
        registry.histogram("queue_wait_s/tenant-0").observe(1e-6)
        registry.histogram("queue_wait_s/tenant-1").observe(2e-6)
        text = prometheus_text(registry)
        assert 'tenant="tenant-0"' in text and 'tenant="tenant-1"' in text
        # One TYPE line for the shared base family, not one per tenant.
        assert text.count("# TYPE repro_queue_wait_s histogram") == 1

    def test_rejects_non_registry(self):
        with pytest.raises(TypeError):
            prometheus_text({"counters": {}})

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        assert prometheus_text(registry) == prometheus_text(registry)
        assert prometheus_text(registry).index("repro_a_total") < \
            prometheus_text(registry).index("repro_b_total")


# -- serving-surface wiring --------------------------------------------------
def _quantized(rng, rows, columns):
    return rng.integers(0, 8, (rows, columns))


def test_session_obs_implies_telemetry_and_validates():
    session = PhotonicSession(grid=GRID, obs=Observer(rules=[]))
    assert session.telemetry is not None  # metrics-only auto-binding
    assert session.obs is not None
    with pytest.raises(ConfigurationError):
        PhotonicSession(grid=GRID, obs="watcher")
    with pytest.raises(ConfigurationError):
        PhotonicCluster(cores=1, grid=GRID, obs="watcher")


def test_session_flush_and_health_feed_the_observer():
    observer = Observer(rules=[])
    session = PhotonicSession(
        grid=GRID,
        max_batch=4,
        flush_policy=FlushPolicy.max_batch(4),
        health_policy=HealthPolicy.monitor_only(probe_every=1, probes=4),
        obs=observer,
        clock=ModelClock(),
    )
    rng = np.random.default_rng(7)
    weights = _quantized(rng, *GRID)
    for _ in range(4):
        session.age(0.5)
        session.submit(weights, rng.random(GRID[1]))
    assert session.pending == 0  # max_batch flushed
    assert observer._samples, "flush hook never fed the observer"
    sample = observer._samples[-1]
    assert sample.requests == 4
    assert sample.at == session.telemetry.clock.now  # modelled stamp
    assert observer._health, "health hook never fed the observer"


def test_cluster_fleet_events_reach_the_observer():
    observer = Observer(rules=[])
    cluster = PhotonicCluster(
        cores=2,
        grid=GRID,
        flush_policy=FlushPolicy.explicit(),
        max_pending=2,
        obs=observer,
    )
    rng = np.random.default_rng(9)
    weights = _quantized(rng, *GRID)
    with pytest.raises(ClusterSaturatedError):
        for _ in range(5):
            cluster.submit(weights, rng.random(GRID[1]))
    cluster.flush()
    cluster.drain(0)
    cluster.restore(0)
    cluster.scale_up()
    cluster.scale_down()
    kinds = [event.kind for event in observer._events]
    assert "shed" in kinds
    assert "drain" in kinds and "restore" in kinds
    # Scale transitions emit exactly one event each: the inner
    # drain/restore/add_core they perform are suppressed.
    assert kinds.count("scale_up") == 1
    assert kinds.count("scale_down") == 1
    assert kinds.count("drain") == 1
    # The fleet snapshot callable is attached and serializable.
    snapshot = observer._fleet_snapshot()
    assert snapshot["cores"] == cluster.cores
    assert "pending" in snapshot and "at" in snapshot


def test_traffic_engine_marks_run_bounds():
    observer = Observer(rules=[])
    session = PhotonicSession(
        grid=GRID,
        max_batch=16,
        flush_policy=FlushPolicy.max_batch(16),
        metrics=MetricsRegistry(),
        clock=ModelClock(),
        obs=observer,
    )
    mix = WorkloadMix.zipf(tenants=2, rows=GRID[0], columns=GRID[1])
    engine = TrafficEngine(session, mix, Poisson(1e9), seed=11)
    summary = engine.run(50)
    kinds = [event.kind for event in observer._events]
    assert kinds[0] == "traffic_run_started"
    assert kinds[-1] == "traffic_run_finished"
    started = observer._events[0]
    assert started.args["offered"] == 50
    finished = observer._events[-1]
    assert finished.args["admitted"] == summary["admitted"]
    assert finished.at == pytest.approx(summary["makespan_s"])


# -- the zero-overhead guard -------------------------------------------------
OBSERVER_ENTRY_POINTS = (
    "observe_flush", "observe_health", "note_event", "attach_fleet"
)


def test_unattached_surfaces_make_zero_obs_calls(monkeypatch):
    """No obs= -> session, cluster, traffic and elastic scale paths
    never enter an Observer method."""
    def boom(self, *args, **kwargs):
        raise AssertionError("obs call on an unattached surface")

    for method in OBSERVER_ENTRY_POINTS:
        monkeypatch.setattr(Observer, method, boom)

    # Session: drifting, health-probed, traffic-driven.
    session = PhotonicSession(
        grid=GRID,
        max_batch=8,
        flush_policy=FlushPolicy.max_batch(8),
        metrics=MetricsRegistry(),
        clock=ModelClock(),
        drift=drift_suite(1.0),
        health_policy=HealthPolicy.monitor_only(probe_every=1, probes=4),
    )
    assert session.obs is None
    mix = WorkloadMix.zipf(tenants=2, rows=GRID[0], columns=GRID[1])
    engine = TrafficEngine(
        session, mix, Poisson(1e9),
        slo=SLO(p99_latency=1.0, deadline_miss_budget=0.5), seed=7
    )
    engine.run(60)
    session.check_health()
    session.recalibrate()

    # Cluster: sheds, drain/restore and elastic scale transitions.
    cluster = PhotonicCluster(
        cores=2, grid=GRID, flush_policy=FlushPolicy.explicit(),
        max_pending=2,
    )
    assert cluster.obs is None
    rng = np.random.default_rng(3)
    weights = _quantized(rng, *GRID)
    with pytest.raises(ClusterSaturatedError):
        for _ in range(5):
            cluster.submit(weights, rng.random(GRID[1]))
    cluster.flush()
    cluster.drain(0)
    cluster.restore(0)
    cluster.scale_up()
    cluster.scale_down()


def _alertable_session(observer=None):
    return PhotonicSession(
        grid=GRID,
        max_batch=8,
        flush_policy=FlushPolicy.max_batch(8),
        drift=drift_suite(1.5),
        health_policy=HealthPolicy.monitor_only(probe_every=1, probes=8),
        obs=observer,
    )


def _drift_workload(session):
    rng = np.random.default_rng(17)
    weights = _quantized(rng, *GRID)
    futures = []
    for _ in range(32):
        session.age(2.0)
        futures.append(session.submit(weights, rng.random(GRID[1])))
    session.flush()
    values = [np.asarray(future.result(), dtype=float)
              for future in futures]
    return values, session.report()


def test_alerted_run_is_bit_for_bit_identical_to_unalerted():
    """The observer observes; it must never perturb a single value,
    even while its rules fire."""
    plain_values, plain_report = _drift_workload(_alertable_session())
    observer = Observer(
        rules=[ProbeErrorBurnRule(budget=0.02, window_s=30.0,
                                  short_window_s=10.0)],
        recorder=FlightRecorder(),
    )
    obs_values, obs_report = _drift_workload(_alertable_session(observer))
    assert any(alert.state == "firing" for alert in observer.alerts)
    assert len(plain_values) == len(obs_values)
    for plain, watched in zip(plain_values, obs_values):
        assert np.array_equal(plain, watched)
    # Every ledger matches; only the quantile summaries differ (the
    # attached run auto-binds metrics-only telemetry) by design.
    for field in RunReport.__dataclass_fields__:
        if field in ("latency_quantiles", "tenant_quantiles"):
            continue
        assert getattr(plain_report, field) == getattr(obs_report, field), \
            field
    assert plain_report.latency_quantiles is None
    assert obs_report.latency_quantiles is not None


# -- the induced incident, end to end ----------------------------------------
def test_drift_incident_fires_bundles_and_renders():
    """Severity-1.5 drift + monitor-only probes + the Zipf trace: the
    burn-rate rule pages on the modelled clock, the bundle's trailing
    spans include the offending flushes, and the dashboard renders the
    alert marker."""
    trace = TraceRecorder(label="incident")
    observer = Observer(
        rules=[ProbeErrorBurnRule(budget=0.02, window_s=30.0,
                                  short_window_s=10.0, severity="page")],
        recorder=FlightRecorder(trace=trace, capacity=64),
    )
    session = PhotonicSession(
        grid=GRID,
        max_batch=4,
        flush_policy=FlushPolicy.max_batch(4),
        drift=drift_suite(1.5),
        health_policy=HealthPolicy.monitor_only(probe_every=1, probes=8),
        trace=trace,
        obs=observer,
        label="incident",
    )
    for _, weights, x in synthetic_trace(requests=64, rows=GRID[0],
                                         columns=GRID[1], seed=5):
        session.age(2.0)
        session.submit(weights, x)
    session.flush()

    fired = [alert for alert in observer.alerts if alert.state == "firing"]
    assert fired, "the induced drift never paged"
    page = fired[0]
    assert page.rule == "probe-error-burn"
    assert page.severity == "page"
    assert page.value >= 1.0
    # Stamped on the modelled clock: strictly positive, within the
    # trace's modelled horizon, and far below any host-epoch stamp.
    assert 0.0 < page.at <= session.telemetry.clock.now
    assert page.at < 64 * 2.0 + 60.0

    assert observer.incidents, "the page never dumped a bundle"
    bundle = observer.incidents[0]
    assert bundle.at == page.at
    assert bundle.trigger["kind"] == "alert"
    assert bundle.trigger["alert"]["rule"] == "probe-error-burn"
    categories = {span.get("cat") for span in bundle.spans}
    assert "flush" in categories, "trailing spans miss the flushes"
    assert "health" in categories
    # The bundle is self-contained JSON.
    payload = json.loads(bundle.to_json())
    assert payload["trigger"]["alert"]["severity"] == "page"

    html = render_dashboard(trace=trace, alerts=observer.alerts,
                            incidents=observer.incidents)
    assert "alert-marker" in html
    assert "probe-error-burn" in html
    assert "<svg" in html


# -- dashboard ---------------------------------------------------------------
def test_dashboard_renders_from_live_and_saved_traces(tmp_path):
    recorder = TraceRecorder()
    session = PhotonicSession(grid=GRID, trace=recorder)
    rng = np.random.default_rng(3)
    weights = _quantized(rng, *GRID)
    for _ in range(5):
        session.submit(weights, rng.random(GRID[1]))
    session.flush()

    live = render_dashboard(trace=recorder,
                            metrics=session.telemetry.metrics)
    assert "<svg" in live and "latency quantiles" in live
    assert "repro serving dashboard" in live

    saved = recorder.save(tmp_path / "trace.json")
    from_file = render_dashboard(trace=saved)
    assert "<svg" in from_file

    out = save_dashboard(tmp_path / "dash.html", trace=saved,
                         title="drift smoke")
    text = out.read_text()
    assert text.startswith("<!DOCTYPE html>")
    assert "drift smoke" in text
    # Self-contained: no external scripts, stylesheets or images.
    assert "http://" not in text and "https://" not in text
    assert "<script src" not in text and "<link" not in text


def test_dashboard_rejects_bad_buckets():
    with pytest.raises(ConfigurationError):
        render_dashboard(buckets=0)


# -- tenant quantiles on reports ---------------------------------------------
def test_session_report_exposes_tenant_quantiles():
    session = PhotonicSession(grid=GRID, metrics=MetricsRegistry(),
                              clock=ModelClock())
    rng = np.random.default_rng(5)
    weights = _quantized(rng, *GRID)
    session.submit(weights, rng.random(GRID[1]), tenant="tenant-a")
    session.submit(weights, rng.random(GRID[1]), tenant="tenant-b")
    session.flush()
    report = session.report()
    assert set(report.tenant_quantiles) == {"tenant-a", "tenant-b"}
    split = report.tenant_quantiles["tenant-a"]
    assert split["queue_wait"]["count"] == 1
    assert split["service"]["count"] == 1
    assert report.to_dict()["tenant_quantiles"] is not None


def test_cluster_report_merges_tenant_quantiles():
    cluster = PhotonicCluster(
        cores=2, grid=GRID, metrics=MetricsRegistry(), clock=ModelClock(),
        routing=RoutingPolicy(kind="round_robin"),
        flush_policy=FlushPolicy.explicit(),
    )
    rng = np.random.default_rng(6)
    weights = _quantized(rng, *GRID)
    # Round-robin spreads the same tenant over both cores: the fleet
    # split must merge the per-core histograms.
    for _ in range(4):
        cluster.submit(weights, rng.random(GRID[1]), tenant="shared")
    cluster.flush()
    report = cluster.report()
    assert set(report.tenant_quantiles) == {"shared"}
    assert report.tenant_quantiles["shared"]["queue_wait"]["count"] == 4
    assert report.to_dict()["tenant_quantiles"] is not None


def test_untelemetered_reports_leave_tenant_quantiles_none():
    session = PhotonicSession(grid=GRID)
    rng = np.random.default_rng(8)
    session.submit(_quantized(rng, *GRID), rng.random(GRID[1]),
                   tenant="quiet")
    session.flush()
    assert session.report().tenant_quantiles is None
    cluster = PhotonicCluster(cores=1, grid=GRID)
    assert cluster.report().tenant_quantiles is None
