"""Unit tests for the microring resonator models (paper Figs. 3a, 6)."""

import numpy as np
import pytest

from repro.config import RingSpec
from repro.errors import ConfigurationError
from repro.photonics.mrr import AddDropMRR, AllPassMRR
from repro.photonics.pn_junction import DepletionTuner, InjectionTuner
from repro.photonics.signal import WDMSignal


def test_compute_ring_fsr_and_linewidth(compute_ring):
    assert compute_ring.fsr == pytest.approx(9.36e-9, rel=1e-3)
    assert compute_ring.fwhm == pytest.approx(146.8e-12, rel=0.02)
    assert 8000 < compute_ring.q_factor < 10000


def test_compute_ring_deep_thru_notch_on_resonance(compute_ring, tech):
    thru = float(compute_ring.thru_transmission(tech.wavelength, voltage=0.0))
    drop = float(compute_ring.drop_transmission(tech.wavelength, voltage=0.0))
    assert thru < 0.01  # < -20 dB extinction
    assert drop > 0.85  # most light drops


def test_compute_ring_injection_detuning_opens_thru(compute_ring, tech):
    """Weight bit 1 (VDD drive) must pass most of the channel light."""
    thru = float(compute_ring.thru_transmission(tech.wavelength, voltage=1.8))
    drop = float(compute_ring.drop_transmission(tech.wavelength, voltage=1.8))
    assert thru > 0.8
    assert drop < 0.15


def test_resonances_repeat_at_fsr(compute_ring, tech):
    lam = tech.wavelength
    thru_here = float(compute_ring.thru_transmission(lam, voltage=0.0))
    thru_fsr = float(compute_ring.thru_transmission(lam + compute_ring.fsr, voltage=0.0))
    assert thru_fsr == pytest.approx(thru_here, abs=1e-3)


def test_length_adjust_shifts_resonance_by_paper_value(tech):
    """Paper Fig. 6: dL = 68/136/204 nm -> 2.33/4.66/6.99 nm shifts."""
    for steps in (1, 2, 3):
        ring = AddDropMRR(
            tech.compute_ring_spec(),
            design_wavelength=tech.wavelength,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            length_adjust=steps * 68e-9,
        )
        shift = ring.resonance_wavelength() - tech.wavelength
        assert shift == pytest.approx(steps * 2.33e-9, rel=1e-3)


def test_four_channels_fit_in_fsr(tech):
    """Paper Section III: 4 channels at 2.33 nm inside the 9.36 nm FSR."""
    ring = AddDropMRR(
        tech.compute_ring_spec(),
        design_wavelength=tech.wavelength,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
    )
    assert 4 * 2.33e-9 < ring.fsr


def test_adc_ring_critical_coupling_extinction(adc_ring, tech):
    """At critical coupling the on-resonance thru power vanishes."""
    thru = float(adc_ring.thru_transmission(tech.wavelength, voltage=0.0))
    assert thru < 1e-4
    assert adc_ring.extinction_ratio_db > 35.0


def test_adc_ring_voltage_notch_walks_with_reference(adc_ring, tech):
    """Paper Fig. 3(a): the dip tracks the junction voltage."""
    lam = tech.wavelength
    t_resonant = float(adc_ring.thru_transmission(lam, voltage=0.0))
    t_quarter = float(adc_ring.thru_transmission(lam, voltage=0.25))
    t_volt = float(adc_ring.thru_transmission(lam, voltage=1.0))
    assert t_resonant < t_quarter < t_volt


def test_adc_ring_bin_edge_transmission_matches_window_design(adc_ring, tech):
    """At a half-LSB detuning the thru power sits just below the 18/200
    threshold — the two-hot bin-edge behaviour of Fig. 9."""
    threshold = tech.eoadc.reference_power / tech.eoadc.channel_power
    t_edge = float(adc_ring.thru_transmission(tech.wavelength, voltage=0.25))
    assert t_edge < threshold
    assert t_edge > 0.8 * threshold


def test_adc_ring_q_supports_8gsps(adc_ring):
    """Photon lifetime must leave room inside a 125 ps sample period."""
    assert adc_ring.photon_lifetime < 125e-12 / 4.0
    assert 20000 < adc_ring.q_factor < 30000


def test_passivity_thru_plus_drop_bounded(compute_ring, tech):
    lam = np.linspace(tech.wavelength - 5e-9, tech.wavelength + 5e-9, 501)
    thru = compute_ring.thru_transmission(lam, voltage=0.0)
    drop = compute_ring.drop_transmission(lam, voltage=0.0)
    assert np.all(thru >= 0.0) and np.all(drop >= 0.0)
    assert np.all(thru + drop <= 1.0 + 1e-12)


def test_lossless_ring_conserves_power(tech):
    spec = RingSpec(radius=7.5e-6, gap_thru=200e-9, gap_drop=200e-9, loss_db_per_cm=0.0)
    ring = AddDropMRR(
        spec,
        design_wavelength=tech.wavelength,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
    )
    lam = np.linspace(tech.wavelength - 2e-9, tech.wavelength + 2e-9, 101)
    total = ring.thru_transmission(lam) + ring.drop_transmission(lam)
    assert np.allclose(total, 1.0, atol=1e-9)


def test_trim_error_shifts_resonance(tech):
    ring = AllPassMRR(
        tech.adc_ring_spec(),
        design_wavelength=tech.wavelength,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
        trim_error=5e-12,
    )
    assert ring.resonance_wavelength() - tech.wavelength == pytest.approx(5e-12)


def test_thermal_shift_is_red(tech):
    ring = AllPassMRR(
        tech.adc_ring_spec(),
        design_wavelength=tech.wavelength,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
    )
    ring.delta_temperature = 2.0
    assert ring.resonance_wavelength() - tech.wavelength == pytest.approx(150e-12, rel=1e-6)


def test_finesse_consistency(compute_ring):
    assert compute_ring.finesse == pytest.approx(
        compute_ring.fsr / compute_ring.fwhm, rel=1e-12
    )


def test_port_protocol_scales_signal(compute_ring, tech):
    signal = WDMSignal.single(tech.wavelength, 1e-3)
    out = compute_ring.propagate_ports({"in": signal})
    assert out["thru"].total_power == pytest.approx(
        1e-3 * float(compute_ring.thru_transmission(tech.wavelength))
    )
    assert out["drop"].total_power == pytest.approx(
        1e-3 * float(compute_ring.drop_transmission(tech.wavelength))
    )


def test_invalid_construction_rejected(tech):
    with pytest.raises(ConfigurationError):
        AllPassMRR(
            tech.adc_ring_spec(),
            design_wavelength=-1.0,
            waveguide=tech.waveguide,
        )
    with pytest.raises(ConfigurationError):
        AddDropMRR(
            tech.compute_ring_spec(),
            design_wavelength=tech.wavelength,
            waveguide=tech.waveguide,
            length_adjust=-1e-9,
        )
