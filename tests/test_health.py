"""Tests for repro.health: drift models, probe monitoring, recalibration.

Covers the full loop at every layer: perturbation algebra and model
units, device-loop vs compiled-engine equality under drift, session
probe checks / auto-recalibration / exact cache invalidation, and
cluster drain-recalibrate-restore maintenance.
"""

import numpy as np
import pytest

from repro.api import (
    Dense,
    FlushPolicy,
    HealthPolicy,
    Model,
    PhotonicCluster,
    PhotonicSession,
    ReLU,
    RoutingPolicy,
)
from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.health import (
    DRIFT_STAGES,
    ComparatorOffsetAging,
    DriftModel,
    DriftState,
    LaserPowerDecay,
    Perturbation,
    ThermalDetuning,
    TiaGainDrift,
)


def drift_suite(severity: float = 1.0):
    return (
        ThermalDetuning(amplitude_kelvin=0.35 * severity, period_s=45.0),
        LaserPowerDecay(rate_per_s=1e-3 * severity),
        TiaGainDrift(drift_per_s=-8e-4 * severity),
        ComparatorOffsetAging(
            volts_per_inference=2e-4 * severity, saturation_volts=0.45
        ),
    )


def aged_session(**kwargs):
    """A session that served one modelled minute of drifting traffic."""
    rng = np.random.default_rng(5)
    weights = rng.integers(0, 8, (8, 8))
    session = PhotonicSession(
        grid=(8, 8),
        flush_policy=FlushPolicy.max_batch(16),
        drift=drift_suite(),
        **kwargs,
    )
    for _ in range(64):
        session.age(1.0)
        session.submit(weights, rng.uniform(0.0, 1.0, 8))
    session.flush()
    return session


class TestPerturbation:
    def test_identity_and_compose(self):
        identity = Perturbation()
        assert identity.is_identity
        p = Perturbation(current_scale=0.9, gain_scale=1.1, voltage_offset=0.05)
        assert not p.is_identity
        composed = p.compose(Perturbation(current_scale=0.5, voltage_offset=0.01))
        assert composed.current_scale == pytest.approx(0.45)
        assert composed.gain_scale == pytest.approx(1.1)
        assert composed.voltage_offset == pytest.approx(0.06)

    def test_relative_to_cancels_exactly(self):
        p = Perturbation(current_scale=0.9, gain_scale=1.1, voltage_offset=0.05)
        assert p.relative_to(p).is_identity

    def test_rejects_non_positive_scales(self):
        with pytest.raises(ConfigurationError):
            Perturbation(current_scale=0.0)
        with pytest.raises(ConfigurationError):
            Perturbation(gain_scale=-1.0)


class TestDriftModels:
    def test_all_models_identity_at_birth(self):
        for model in drift_suite():
            assert model.perturbation(0.0, 0).is_identity

    def test_laser_decay_monotone(self):
        model = LaserPowerDecay(rate_per_s=1e-3)
        scales = [model.perturbation(t, 0).current_scale for t in (0, 10, 100)]
        assert scales[0] > scales[1] > scales[2] > 0.0

    def test_thermal_detuning_periodic_and_floored(self):
        model = ThermalDetuning(amplitude_kelvin=5.0, period_s=40.0, floor=0.25)
        full_period = model.perturbation(40.0, 0).current_scale
        assert full_period == pytest.approx(1.0)
        worst = model.perturbation(10.0, 0).current_scale  # sin peak
        assert worst == pytest.approx(0.25)  # clamped at the floor

    def test_tia_gain_drift_clamps(self):
        droop = TiaGainDrift(drift_per_s=-1e-2)
        assert droop.perturbation(10.0, 0).gain_scale == pytest.approx(0.9)
        assert droop.perturbation(1e9, 0).gain_scale == pytest.approx(0.05)

    def test_comparator_offset_ages_with_use_and_saturates(self):
        model = ComparatorOffsetAging(
            volts_per_inference=1e-3, saturation_volts=0.2
        )
        assert model.perturbation(1e6, 0).voltage_offset == 0.0  # time-blind
        assert model.perturbation(0.0, 50).voltage_offset == pytest.approx(0.05)
        assert model.perturbation(0.0, 10**9).voltage_offset == pytest.approx(0.2)

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            ThermalDetuning(amplitude_kelvin=-1.0)
        with pytest.raises(ConfigurationError):
            LaserPowerDecay(rate_per_s=-1e-3)
        with pytest.raises(ConfigurationError):
            ComparatorOffsetAging(saturation_volts=0.0)


class TestDriftState:
    def test_advance_and_truth(self):
        state = DriftState([LaserPowerDecay(rate_per_s=1e-2)])
        assert state.truth().is_identity
        state.advance(seconds=10.0, inferences=5)
        assert state.elapsed_s == 10.0 and state.inferences == 5
        assert state.truth().current_scale == pytest.approx(np.exp(-0.1))

    def test_residual_cancelled_by_recalibrate(self):
        state = DriftState(drift_suite())
        state.advance(seconds=30.0, inferences=500)
        assert not state.residual().is_identity
        assert state.epoch == 0
        state.recalibrate()
        assert state.epoch == 1
        assert state.residual().is_identity
        state.advance(seconds=5.0)
        assert not state.residual().is_identity  # drifts on past the trim

    def test_stage_residual_decomposition(self):
        state = DriftState(drift_suite())
        state.advance(seconds=30.0, inferences=500)
        residual = state.residual()
        optical = state.stage_residual("optical")
        assert optical.current_scale == residual.current_scale
        assert optical.gain_scale == 1.0 and optical.voltage_offset == 0.0
        assert state.stage_residual("adc").voltage_offset == residual.voltage_offset
        with pytest.raises(ConfigurationError):
            state.stage_residual("psram")

    def test_inactive_state_and_validation(self):
        assert not DriftState().active
        assert DriftState(drift_suite()).active
        with pytest.raises(ConfigurationError):
            DriftState(["not a model"])
        with pytest.raises(ConfigurationError):
            DriftState(drift_suite()).advance(seconds=-1.0)


class TestEngineDriftEquality:
    def test_device_loop_matches_compiled_engine_at_every_age(self, tech):
        rng = np.random.default_rng(3)
        core = PhotonicTensorCore(rows=4, columns=8, technology=tech)
        core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
        core.drift_state = DriftState(drift_suite(2.0))
        engine = core.compile()
        x = rng.uniform(0.0, 1.0, 8)
        pristine = core.matvec(x).codes.copy()
        drifted_somewhere = False
        for _ in range(4):
            core.drift_state.advance(seconds=11.0, inferences=400)
            device = core.matvec(x)
            compiled = engine.matmul(x[:, np.newaxis])
            assert np.array_equal(device.codes, compiled.codes[:, 0])
            assert np.allclose(device.estimates, compiled.estimates[:, 0])
            drifted_somewhere |= not np.array_equal(device.codes, pristine)
        assert drifted_somewhere  # the drift actually bit

    def test_identity_residual_overrides_live_drift(self, tech):
        rng = np.random.default_rng(4)
        core = PhotonicTensorCore(rows=4, columns=8, technology=tech)
        core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
        x = rng.uniform(0.0, 1.0, 8)
        pristine = core.matvec(x).codes.copy()
        core.drift_state = DriftState(drift_suite(2.0))
        engine = core.compile()
        core.drift_state.advance(seconds=47.0, inferences=900)
        golden = engine.matmul(x[:, np.newaxis], residual=Perturbation())
        assert np.array_equal(golden.codes[:, 0], pristine)

    def test_stale_engine_keeps_old_trims_after_recalibration(self, tech):
        rng = np.random.default_rng(6)
        core = PhotonicTensorCore(rows=4, columns=8, technology=tech)
        core.load_weight_matrix(rng.integers(0, 8, (4, 8)))
        core.drift_state = DriftState([LaserPowerDecay(rate_per_s=5e-3)])
        x = rng.uniform(0.0, 1.0, 8)
        pristine = core.matvec(x).codes.copy()
        stale = core.compile()
        core.drift_state.advance(seconds=60.0)
        core.drift_state.recalibrate()
        fresh = core.compile()
        assert stale.calibration_epoch == 0 and fresh.calibration_epoch == 1
        # The freshly compiled program carries the new trims: pristine.
        assert np.array_equal(fresh.matmul(x[:, np.newaxis]).codes[:, 0], pristine)
        # The stale program still serves with the old (identity) trims.
        assert not np.array_equal(
            stale.matmul(x[:, np.newaxis]).codes[:, 0], pristine
        )


class TestSessionHealth:
    def test_unmonitored_session_degrades_measurably(self):
        session = aged_session()
        report = session.check_health()
        assert report.code_error_rate > 0.0
        assert report.enob_loss > 0.0
        assert not report.healthy
        assert set(report.attribution) == set(DRIFT_STAGES)
        assert report.dominant_stage in DRIFT_STAGES

    def test_drift_free_session_probes_clean(self):
        session = PhotonicSession(grid=(4, 6))
        report = session.check_health()
        assert report.healthy and report.code_error_rate == 0.0
        assert report.enob_loss == 0.0

    def test_served_codes_actually_drift(self):
        """Not just probes: the codes served to traffic walk too."""
        rng = np.random.default_rng(9)
        weights = rng.integers(0, 8, (8, 8))
        x = rng.uniform(0.0, 1.0, 8)
        pristine = PhotonicSession(grid=(8, 8))
        drifting = PhotonicSession(grid=(8, 8), drift=drift_suite(2.0))
        drifting.age(50.0)
        reference = pristine.submit(weights, x)
        drifted = drifting.submit(weights, x)
        assert not np.allclose(reference.result(), drifted.result())
        assert not np.array_equal(reference.codes, drifted.codes)

    def test_recalibrate_restores_bit_for_bit_and_counts(self):
        session = aged_session()
        before = session.check_health()
        assert before.code_error_rate > 0.0
        verification = session.recalibrate()
        assert verification is not None and verification.recalibrated
        assert verification.healthy  # bit-for-bit vs compile-time golden
        report = session.report()
        assert report.recalibrations == 1
        assert report.probe_runs >= 2
        assert report.calibration_time > 0.0
        assert report.calibration_energy > 0.0

    def test_recalibrate_requires_drift(self):
        session = PhotonicSession(grid=(4, 6))
        with pytest.raises(ConfigurationError):
            session.recalibrate()
        # An empty suite means "no drift": coerced to None, so the
        # epoch machinery never runs against an inactive state.
        empty = PhotonicSession(grid=(4, 6), drift=[])
        assert empty.drift is None
        with pytest.raises(ConfigurationError):
            empty.recalibrate()

    def test_recalibrate_invalidates_exactly_stale_programs(self):
        rng = np.random.default_rng(11)
        session = PhotonicSession(grid=(4, 6), drift=drift_suite())
        small = rng.integers(0, 8, (4, 6))     # native scheduler route
        big = rng.integers(0, 8, (7, 9))       # tiled route
        session.submit(small, rng.uniform(0.0, 1.0, 6))
        session.submit(big, rng.uniform(0.0, 1.0, 9))
        session.flush()
        assert len(session.scheduler.cache) == 1
        assert len(session.tiled_cache) == 1
        session.age(40.0)
        session.recalibrate()
        # Every program was compiled under epoch 0: all evicted.
        assert len(session.scheduler.cache) == 0
        assert len(session.tiled_cache) == 0
        assert session.scheduler.cache.invalidations == 1
        assert session.tiled_cache.invalidations == 1
        # Programs recompiled after the trim are kept by the next recal
        # only if still fresh: recompile, advance, recalibrate again.
        session.submit(small, rng.uniform(0.0, 1.0, 6))
        session.flush()
        assert len(session.scheduler.cache) == 1
        session.age(10.0)
        session.recalibrate()
        assert len(session.scheduler.cache) == 0  # epoch 1 != epoch 2
        # And a program compiled at the *current* epoch survives a
        # no-op eviction pass (nothing else invalidates it).
        session.submit(small, rng.uniform(0.0, 1.0, 6))
        session.flush()
        epoch = session.drift.epoch
        kept = session.scheduler.cache.evict_where(
            lambda program: program.engine.calibration_epoch != epoch
        )
        assert kept == 0 and len(session.scheduler.cache) == 1

    def test_health_policy_auto_recalibrates_and_recovers(self):
        session = aged_session(
            health_policy=HealthPolicy.auto(threshold=0.05, probe_every=1)
        )
        report = session.report()
        assert report.probe_runs >= 1
        assert report.recalibrations >= 1
        post_recal = [c for c in session.health_history if c.recalibrated]
        assert post_recal and all(c.healthy for c in post_recal)

    def test_monitor_only_policy_never_recalibrates(self):
        session = aged_session(health_policy=HealthPolicy.monitor_only())
        report = session.report()
        assert report.probe_runs >= 1
        assert report.recalibrations == 0
        assert any(not c.healthy for c in session.health_history)

    def test_deployed_model_rebinds_after_recalibration(self):
        rng = np.random.default_rng(13)
        session = PhotonicSession(grid=(4, 6), drift=drift_suite())
        model = Model.sequential(
            Dense(rng.normal(0.0, 0.5, (5, 6))), ReLU(),
            Dense(rng.normal(0.0, 0.5, (3, 5))),
        )
        endpoint = session.compile(
            model, calibration=rng.uniform(0.0, 1.0, (8, 6))
        )
        batch = rng.uniform(0.0, 1.0, (4, 6))
        pristine = endpoint.predict(batch)
        session.age(45.0)
        drifted = endpoint.predict(batch)
        assert not np.allclose(pristine, drifted)
        session.recalibrate()
        assert endpoint._needs_rebind
        recovered = endpoint.predict(batch)
        assert np.allclose(recovered, pristine)
        assert not endpoint._needs_rebind

    def test_run_report_carries_health_counters_through_combined(self):
        session = aged_session(
            health_policy=HealthPolicy.auto(threshold=0.05, probe_every=1)
        )
        report = session.report()
        from repro.api import RunReport

        doubled = RunReport.combined([report, report])
        assert doubled.probe_runs == 2 * report.probe_runs
        assert doubled.recalibrations == 2 * report.recalibrations
        assert doubled.calibration_energy == pytest.approx(
            2 * report.calibration_energy
        )
        assert "recalibrations" in str(report)

    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            HealthPolicy(probe_every=0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(probes=0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(recalibrate_threshold=1.5)
        with pytest.raises(ConfigurationError):
            PhotonicSession(grid=(4, 6), health_policy="every flush")
        with pytest.raises(ConfigurationError):
            PhotonicSession(grid=(4, 6), drift="thermal")

    def test_age_validation(self):
        session = PhotonicSession(grid=(4, 6), drift=drift_suite())
        with pytest.raises(ConfigurationError):
            session.age(-1.0)
        PhotonicSession(grid=(4, 6)).age(10.0)  # drift-free: a no-op


class TestClusterHealth:
    def cluster(self, **kwargs):
        return PhotonicCluster(
            cores=3,
            grid=(8, 8),
            flush_policy=FlushPolicy.max_batch(16),
            drift=drift_suite(),
            **kwargs,
        )

    def test_drain_routes_around_and_restore_returns(self):
        rng = np.random.default_rng(17)
        cluster = self.cluster(routing=RoutingPolicy.round_robin())
        weights = rng.integers(0, 8, (8, 8))
        cluster.drain(1)
        assert cluster.draining == (1,)
        assert cluster.active_cores == (0, 2)
        futures = [
            cluster.submit(weights, rng.uniform(0.0, 1.0, 8)) for _ in range(12)
        ]
        cluster.flush()
        assert all(future.done for future in futures)
        report = cluster.report()
        assert report.routed[1] == 0  # nothing landed on the drained core
        assert report.routed[0] + report.routed[2] == 12
        assert report.draining == (1,) and report.drains == 1
        cluster.restore(1)
        assert cluster.active_cores == (0, 1, 2)
        cluster.submit(weights, rng.uniform(0.0, 1.0, 8))

    def test_cannot_drain_last_active_core(self):
        cluster = self.cluster()
        cluster.drain(0)
        cluster.drain(1)
        with pytest.raises(ConfigurationError):
            cluster.drain(2)
        with pytest.raises(ConfigurationError):
            cluster.drain(5)

    def test_drain_flushes_pending_first(self):
        rng = np.random.default_rng(19)
        cluster = PhotonicCluster(
            cores=2, grid=(4, 6), drift=drift_suite(),
            routing=RoutingPolicy.round_robin(),
        )
        weights = rng.integers(0, 8, (4, 6))
        futures = [
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6)) for _ in range(4)
        ]
        cluster.drain(0)
        assert cluster.sessions[0].pending == 0
        assert any(future.done for future in futures)

    def test_recalibrate_core_round_trip(self):
        cluster = self.cluster(
            health_policy=HealthPolicy.monitor_only(probe_every=10**6)
        )
        cluster.age(50.0)
        before = cluster.sessions[0].check_health()
        assert before.code_error_rate > 0.0
        verification = cluster.recalibrate_core(0)
        assert verification.healthy and verification.recalibrated
        assert cluster.active_cores == (0, 1, 2)  # restored afterwards
        assert cluster.report().drains == 1

    def test_fleet_maintenance_keeps_serving_under_drift(self):
        rng = np.random.default_rng(23)
        cluster = self.cluster(
            routing=RoutingPolicy.cache_affinity(),
            health_policy=HealthPolicy.auto(threshold=0.05, probe_every=2),
        )
        tenants = [rng.integers(0, 8, (8, 8)) for _ in range(3)]
        futures = []
        for turn in range(72):
            cluster.age(0.8)
            futures.append(
                cluster.submit(tenants[turn % 3], rng.uniform(0.0, 1.0, 8))
            )
        cluster.flush()
        assert all(future.done for future in futures)
        report = cluster.report()
        assert report.total.recalibrations >= 1
        assert report.drains >= 1
        assert report.draining == ()  # every drained core was restored
        assert report.shed == 0  # traffic kept flowing through maintenance

    def test_replicated_model_skips_drained_replicas(self):
        rng = np.random.default_rng(29)
        cluster = PhotonicCluster(cores=2, grid=(4, 6), drift=drift_suite())
        model = Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6))))
        endpoint = cluster.compile(model, replicas=2)
        cluster.drain(endpoint.core_indices[0])
        batch = rng.uniform(0.0, 1.0, (2, 6))
        for _ in range(3):
            endpoint.submit(batch)
        cluster.flush()
        drained_session = cluster.sessions[endpoint.core_indices[0]]
        report = drained_session.report()
        assert report.requests == 0  # the live replica absorbed all three

    def test_multi_core_cluster_rejects_shared_drift_state(self):
        with pytest.raises(ConfigurationError):
            PhotonicCluster(cores=2, grid=(4, 6), drift=DriftState(drift_suite()))
        # cores=1 may take a ready state.
        PhotonicCluster(cores=1, grid=(4, 6), drift=DriftState(drift_suite()))

    def test_cores_drift_independently(self):
        cluster = PhotonicCluster(cores=2, grid=(4, 6), drift=drift_suite())
        states = [session.drift for session in cluster.sessions]
        assert states[0] is not states[1]
        states[0].advance(seconds=30.0)
        assert states[1].elapsed_s == 0.0
