"""Tests for the elastic fleet subsystem (repro.elastic): the
content-addressed ProgramStore and its warm-start round trips, the
incremental consistent-hash ring, the Autoscaler policy, and the
cluster integration (scale up/down, heterogeneous capability routing,
fleet telemetry, traffic-engine membership refresh)."""

import numpy as np
import pytest

from repro.api import (
    FlushPolicy,
    HashRing,
    PhotonicCluster,
    PhotonicSession,
    RoutingPolicy,
)
from repro.elastic import (
    Autoscaler,
    CoreSpec,
    FleetSnapshot,
    ProgramStore,
    core_fingerprint,
)
from repro.errors import (
    ConfigurationError,
    CorruptProgramError,
    StaleProgramError,
)
from repro.health import DriftState, LaserPowerDecay, TiaGainDrift
from repro.telemetry import MetricsRegistry, ModelClock, TraceRecorder
from repro.traffic import Poisson, TrafficEngine, WorkloadMix

GRID = (4, 6)


def fresh_session(tech, store, **kwargs):
    return PhotonicSession(grid=GRID, technology=tech, program_store=store,
                           **kwargs)


def session_fingerprint(session):
    return core_fingerprint(
        session.technology,
        session.rows,
        session.columns,
        session.core.weight_bits,
        session.core.row_adcs[0].bits,
    )


@pytest.fixture()
def store(tmp_path):
    return ProgramStore(tmp_path / "programs")


class TestProgramStoreRoundTrip:
    def test_dense_round_trip_bit_for_bit(self, tech, store):
        rng = np.random.default_rng(7)
        weights = rng.integers(0, 8, GRID)
        x = rng.random(GRID[1])
        cold = fresh_session(tech, store)
        expected = cold.submit(weights, x).result()
        assert store.saves == 1 and store.restores == 0

        warm = fresh_session(tech, store)
        restored = warm.submit(weights, x).result()
        assert np.array_equal(expected, restored)
        assert store.restores == 1
        # Re-serving the restored program skips the (same-epoch) save.
        assert store.save_skips >= 1 or store.saves == 1

    def test_conv_round_trip_bit_for_bit(self, tech, store):
        rng = np.random.default_rng(11)
        kernels = rng.random((2, 3, 3))
        image = rng.random((6, 6))
        cold = fresh_session(tech, store)
        expected = cold.submit_conv(kernels, image).result()
        assert store.saves >= 1

        warm = fresh_session(tech, store)
        restored = warm.submit_conv(kernels, image).result()
        assert np.array_equal(expected, restored)
        assert store.restores >= 1

    def test_drift_compensated_round_trip(self, tech, store):
        rng = np.random.default_rng(3)
        weights = rng.integers(0, 8, GRID)
        x = rng.random(GRID[1])
        models = lambda: (LaserPowerDecay(rate_per_s=1e-2),
                          TiaGainDrift(drift_per_s=-8e-4))
        drift_a = DriftState(models())
        aged = fresh_session(tech, store, drift=drift_a)
        aged.age(30.0)
        aged.recalibrate()
        assert drift_a.epoch == 1
        store.save_calibration("slot", drift_a)
        expected = aged.submit(weights, x).result()

        # A replacement core adopts the persisted calibration record,
        # then restores the epoch-1 program bit-for-bit.
        drift_b = DriftState(models())
        assert store.apply_calibration("slot", drift_b)
        assert drift_b.epoch == drift_a.epoch
        assert drift_b.elapsed_s == pytest.approx(30.0)
        assert drift_b.compensation.current_scale == pytest.approx(
            drift_a.compensation.current_scale
        )
        replacement = fresh_session(tech, store, drift=drift_b)
        restored = replacement.submit(weights, x).result()
        assert np.array_equal(expected, restored)
        assert store.restores >= 1 and store.stale_rejects == 0

    def test_calibration_record_absent_and_corrupt(self, tech, store):
        assert store.load_calibration("ghost") is None
        assert not store.apply_calibration("ghost", DriftState())
        store.save_calibration("slot", DriftState())
        store._calibration_path("slot").write_text("not json")
        with pytest.raises(CorruptProgramError, match="unreadable"):
            store.load_calibration("slot")
        assert store.corrupt_rejects == 1


class TestProgramStoreRejections:
    def populate(self, tech, store):
        rng = np.random.default_rng(5)
        weights = rng.integers(0, 8, GRID)
        session = fresh_session(tech, store)
        session.submit(weights, rng.random(GRID[1])).result()
        key = session.scheduler.cache.keys()[0]
        return session, key, session_fingerprint(session)

    def test_stale_epoch_is_typed(self, tech, store):
        session, key, fingerprint = self.populate(tech, store)
        assert store.load(key, fingerprint=fingerprint, epoch=0,
                          technology=tech) is not None
        with pytest.raises(StaleProgramError, match="epoch"):
            store.load(key, fingerprint=fingerprint, epoch=2, technology=tech)
        assert store.stale_rejects == 1

    def test_corrupt_manifest_is_typed(self, tech, store):
        session, key, fingerprint = self.populate(tech, store)
        digest = store.digest(key, fingerprint)
        store._manifest_path(digest).write_text("{ not json")
        with pytest.raises(CorruptProgramError, match="unreadable"):
            store.load(key, fingerprint=fingerprint, epoch=0, technology=tech)
        assert store.corrupt_rejects == 1

    def test_missing_arrays_are_corrupt(self, tech, store):
        session, key, fingerprint = self.populate(tech, store)
        store._arrays_path(store.digest(key, fingerprint)).unlink()
        with pytest.raises(CorruptProgramError, match="payload"):
            store.load(key, fingerprint=fingerprint, epoch=0, technology=tech)

    def test_serving_falls_back_to_recompile(self, tech, store):
        rng = np.random.default_rng(5)
        weights = rng.integers(0, 8, GRID)
        x = rng.random(GRID[1])
        session, key, fingerprint = self.populate(tech, store)
        expected = session.submit(weights, x).result()
        store._manifest_path(store.digest(key, fingerprint)).write_text("junk")

        fallback = fresh_session(tech, store)
        assert np.array_equal(expected, fallback.submit(weights, x).result())
        assert store.corrupt_rejects >= 1
        # The recompiled program overwrote the damaged entry.
        assert store.load(key, fingerprint=fingerprint, epoch=0,
                          technology=tech) is not None

    def test_unknown_program_type_rejected(self, store):
        with pytest.raises(ConfigurationError, match="persist"):
            store.save(b"key", object(), fingerprint="abc")

    def test_miss_is_none_not_error(self, tech, store):
        assert store.load(b"never-saved", fingerprint="abc", epoch=0,
                          technology=tech) is None
        assert store.misses == 1


class TestHashRing:
    KEYS = [f"program-{i}".encode() for i in range(400)]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="replica"):
            HashRing(replicas=0)
        with pytest.raises(ConfigurationError, match="no members"):
            HashRing().lookup(b"key")

    def test_lookup_is_deterministic_and_spreads(self):
        ring = HashRing(range(8))
        first = [ring.lookup(key) for key in self.KEYS]
        assert first == [ring.lookup(key) for key in self.KEYS]
        assert len(set(first)) == 8  # every member takes a share

    def test_incremental_add_matches_rebuild(self):
        grown = HashRing(range(5))
        grown.add(5)
        rebuilt = HashRing(range(6))
        assert grown.members == rebuilt.members == tuple(range(6))
        assert [grown.lookup(k) for k in self.KEYS] == \
               [rebuilt.lookup(k) for k in self.KEYS]
        grown.add(5)  # idempotent
        assert len(grown) == 6

    def test_incremental_remove_matches_rebuild(self):
        shrunk = HashRing(range(6))
        shrunk.remove(3)
        rebuilt = HashRing([0, 1, 2, 4, 5])
        assert shrunk.members == rebuilt.members
        assert [shrunk.lookup(k) for k in self.KEYS] == \
               [rebuilt.lookup(k) for k in self.KEYS]

    def test_allowed_filters_members(self):
        ring = HashRing(range(6))
        assert all(ring.lookup(k, allowed={2}) == 2 for k in self.KEYS[:20])
        with pytest.raises(ConfigurationError, match="no allowed member"):
            ring.lookup(b"key", allowed={99})

    def test_scale_up_keeps_at_least_90_percent(self):
        """The affinity regression: adding one member to a 16-core ring
        re-homes at most ~1/17 of keys (consistent hashing), far from
        the ~16/17 a modulo router would re-home."""
        ring = HashRing(range(16))
        before = {key: ring.lookup(key) for key in self.KEYS}
        ring.add(16)
        kept = sum(ring.lookup(key) == home for key, home in before.items())
        assert kept / len(self.KEYS) >= 0.90


class TestCoreSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="rows"):
            CoreSpec(rows=0)
        with pytest.raises(ConfigurationError, match="adc_bits"):
            CoreSpec(adc_bits=-1)

    def test_describe(self):
        assert CoreSpec().describe() == "default"
        assert CoreSpec(rows=16, columns=16, adc_bits=5).describe() == "16x16/a5"
        assert CoreSpec(adc_bits=7, weight_bits=4).describe() == "a7/w4"


class TestAutoscalerPolicy:
    def snapshot(self, **kwargs):
        base = dict(active_cores=2, pending=0, shed_delta=0, miss_delta=0,
                    now=10.0, last_scale_at=None)
        base.update(kwargs)
        return FleetSnapshot(**base)

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="min_cores"):
            Autoscaler(min_cores=0)
        with pytest.raises(ConfigurationError, match="max_cores"):
            Autoscaler(min_cores=3, max_cores=2)
        with pytest.raises(ConfigurationError, match="watch_every"):
            Autoscaler(watch_every=0)
        with pytest.raises(ConfigurationError, match="hysteresis"):
            Autoscaler(scale_up_pending=1.0, scale_down_pending=1.0)
        with pytest.raises(ConfigurationError, match="tolerances"):
            Autoscaler(shed_tolerance=-1)
        with pytest.raises(ConfigurationError, match="cooldown"):
            Autoscaler(cooldown_s=-0.1)

    def test_overload_grows_until_max(self):
        policy = Autoscaler(min_cores=1, max_cores=3, scale_up_pending=8.0)
        assert policy.decide(self.snapshot(pending=16)) == 1
        assert policy.decide(self.snapshot(active_cores=3, pending=99)) == 0

    def test_shed_and_miss_deltas_force_growth(self):
        policy = Autoscaler(min_cores=1, max_cores=4)
        assert policy.decide(self.snapshot(shed_delta=1)) == 1
        assert policy.decide(self.snapshot(miss_delta=1)) == 1

    def test_quiet_shrinks_until_min(self):
        policy = Autoscaler(min_cores=1, max_cores=4, scale_down_pending=1.0)
        assert policy.decide(self.snapshot(pending=0)) == -1
        assert policy.decide(self.snapshot(active_cores=1, pending=0)) == 0

    def test_hysteresis_band_holds(self):
        policy = Autoscaler(scale_up_pending=8.0, scale_down_pending=1.0)
        assert policy.decide(self.snapshot(pending=8)) == 0  # 4/core

    def test_sheds_block_shrink(self):
        policy = Autoscaler(min_cores=1, max_cores=4, shed_tolerance=2)
        assert policy.decide(self.snapshot(pending=0, shed_delta=1)) == 0

    def test_cooldown_holds_but_floor_overrides(self):
        policy = Autoscaler(min_cores=2, max_cores=4, cooldown_s=5.0)
        cooling = self.snapshot(pending=99, now=12.0, last_scale_at=10.0)
        assert policy.decide(cooling) == 0
        assert policy.decide(self.snapshot(active_cores=1, now=12.0,
                                           last_scale_at=10.0)) == 1
        settled = self.snapshot(pending=99, now=16.0, last_scale_at=10.0)
        assert policy.decide(settled) == 1

    def test_describe(self):
        text = Autoscaler(min_cores=1, max_cores=4,
                          spec=CoreSpec(adc_bits=7)).describe()
        assert "autoscale[1..4]" in text and "a7" in text


class TestElasticCluster:
    def backlog(self, cluster, count, rng):
        weights = rng.integers(0, 8, GRID)
        for _ in range(count):
            cluster.submit(weights, rng.random(GRID[1]))

    def test_construction_validation(self, tech):
        with pytest.raises(ConfigurationError, match="autoscaler"):
            PhotonicCluster(cores=1, technology=tech, grid=GRID,
                            autoscaler="grow")
        with pytest.raises(ConfigurationError, match="program_store"):
            PhotonicCluster(cores=1, technology=tech, grid=GRID,
                            program_store="/tmp/store")
        with pytest.raises(ConfigurationError, match="core_specs"):
            PhotonicCluster(cores=2, technology=tech, grid=GRID,
                            core_specs=[CoreSpec()])

    def test_manual_scale_cycle_parks_and_unparks(self, tech):
        cluster = PhotonicCluster(cores=1, technology=tech, grid=GRID,
                                  flush_policy=FlushPolicy.explicit())
        # No recorder/registry attached: every scale event below must
        # run without touching telemetry (zero-overhead contract).
        assert cluster.telemetry is None
        grown = cluster.scale_up()
        assert grown == 1 and cluster.active_cores == (0, 1)
        assert cluster.membership_version == 1

        parked = cluster.scale_down()
        assert parked in (0, 1)
        assert cluster.parked == (parked,)
        assert len(cluster.active_cores) == 1
        # Parked slots are parked, not deleted: indices stay stable.
        assert cluster.cores == 2

        # Growth prefers unparking (warmest start) over adding a slot.
        assert cluster.scale_up() == parked
        assert cluster.parked == () and cluster.cores == 2
        report = cluster.report()
        assert report.scale_ups == 2 and report.scale_downs == 1

    def test_scale_down_refuses_last_active_core(self, tech):
        cluster = PhotonicCluster(cores=1, technology=tech, grid=GRID)
        assert cluster.scale_down() is None

    def test_autoscaler_grows_under_backlog_then_parks(self, tech):
        rng = np.random.default_rng(9)
        clock = ModelClock()
        cluster = PhotonicCluster(
            cores=1, technology=tech, grid=GRID,
            flush_policy=FlushPolicy.explicit(), clock=clock,
            autoscaler=Autoscaler(min_cores=1, max_cores=3, watch_every=2,
                                  scale_up_pending=4.0,
                                  scale_down_pending=1.0),
        )
        self.backlog(cluster, 12, rng)
        assert len(cluster.active_cores) == 3  # grew to max under backlog
        cluster.flush()
        clock.advance(1.0)

        # Light traffic with empty queues reads as quiet: park back down.
        for _ in range(8):
            self.backlog(cluster, 1, rng)
            cluster.flush()
        assert len(cluster.active_cores) == 1
        assert len(cluster.parked) == 2

        report = cluster.report()
        assert report.scale_ups >= 2 and report.scale_downs >= 2
        assert report.core_seconds > 0.0
        assert len(report.pending) == cluster.cores
        assert len(report.deadline_shed) == cluster.cores
        assert any("autoscaling" in line for line in report.lines())

    def test_scale_up_warm_starts_from_store(self, tech, tmp_path):
        rng = np.random.default_rng(13)
        store = ProgramStore(tmp_path / "fleet")
        cluster = PhotonicCluster(cores=1, technology=tech, grid=GRID,
                                  flush_policy=FlushPolicy.explicit(),
                                  program_store=store)
        weights = rng.integers(0, 8, GRID)
        expected = cluster.submit(weights, rng.random(GRID[1])).result()
        assert store.saves >= 1

        cluster.scale_up()
        # The grown core serves the hot program from the store instead
        # of recompiling (round-robin lands half the replays on it).
        x = rng.random(GRID[1])
        futures = [cluster.submit(weights, x) for _ in range(4)]
        cluster.flush()
        assert store.restores >= 1
        assert all(np.array_equal(futures[0].result(), f.result())
                   for f in futures[1:])
        assert expected.shape == futures[0].result().shape

    def test_heterogeneous_capability_routing(self, tech):
        rng = np.random.default_rng(17)
        cluster = PhotonicCluster(
            cores=2, technology=tech, grid=GRID,
            flush_policy=FlushPolicy.explicit(),
            core_specs=[None, CoreSpec(rows=8, columns=8, adc_bits=7)],
        )
        assert cluster.core_specs[0] is None
        assert cluster.core_specs[1].adc_bits == 7

        # Small programs go to the cheaper small core...
        cluster.submit(rng.integers(0, 8, GRID), rng.random(GRID[1]))
        assert cluster.sessions[0].pending == 1
        # ...big programs to the only core that fits them in one pass...
        cluster.submit(rng.integers(0, 8, (8, 8)), rng.random(8))
        assert cluster.sessions[1].pending == 1
        # ...and precision-pinned programs to a capable ADC.
        cluster.submit(rng.integers(0, 8, GRID), rng.random(GRID[1]),
                       min_adc_bits=7)
        assert cluster.sessions[1].pending == 2
        # An unsatisfiable floor degrades to the highest-precision core.
        cluster.submit(rng.integers(0, 8, GRID), rng.random(GRID[1]),
                       min_adc_bits=12)
        assert cluster.sessions[1].pending == 3
        cluster.flush()

    def test_affinity_placements_survive_scale_up(self, tech):
        rng = np.random.default_rng(21)
        cluster = PhotonicCluster(cores=4, technology=tech, grid=GRID,
                                  flush_policy=FlushPolicy.explicit(),
                                  routing=RoutingPolicy.cache_affinity())
        programs = [rng.integers(0, 8, GRID) for _ in range(12)]
        for weights in programs:
            cluster.submit(weights, rng.random(GRID[1]))
        cluster.flush()
        cached = sum(len(s.scheduler.cache) for s in cluster.sessions)
        assert cached == len(programs)

        cluster.add_core()
        for weights in programs:
            cluster.submit(weights, rng.random(GRID[1]))
        cluster.flush()
        # Consistent hashing re-homes ~1/5 of programs; most hit the
        # warm cache on their old core instead of recompiling.
        recompiled = sum(len(s.scheduler.cache)
                         for s in cluster.sessions) - cached
        assert recompiled <= len(programs) // 2

    def test_fleet_telemetry_spans_scale_events(self, tech):
        trace = TraceRecorder("elastic")
        cluster = PhotonicCluster(cores=1, technology=tech, grid=GRID,
                                  trace=trace, metrics=MetricsRegistry())
        cluster.scale_up()
        cluster.scale_down()
        names = [event.name for event in trace.events_in("fleet")]
        assert any(name.startswith("scale up core") for name in names)
        assert any(name.startswith("scale down core") for name in names)
        assert cluster.telemetry.metrics.counter("scale_ups").value == 1
        assert cluster.telemetry.metrics.counter("scale_downs").value == 1

    def test_traffic_engine_follows_membership_changes(self, tech):
        cluster = PhotonicCluster(
            cores=1, technology=tech, grid=GRID,
            metrics=MetricsRegistry(), clock=ModelClock(),
            autoscaler=Autoscaler(min_cores=1, max_cores=3, watch_every=4,
                                  scale_up_pending=8.0,
                                  scale_down_pending=1.0),
        )
        mix = WorkloadMix.zipf(tenants=2, rows=GRID[0], columns=GRID[1])
        engine = TrafficEngine(cluster, mix, Poisson(5e4), seed=1)
        result = engine.run(400)
        assert result["resolved"] == 400
        report = cluster.report()
        assert report.scale_ups >= 1  # the tape overloads one core
        assert cluster.cores > 1
        assert report.core_seconds > 0.0
