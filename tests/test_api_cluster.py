"""Tests for the scale-out front door (repro.api.cluster): routed
multi-core clusters, QoS admission control, replicated model
endpoints and the aggregated ClusterReport."""

import numpy as np
import pytest

from repro.api import (
    ClusterReport,
    Conv2d,
    Dense,
    FlushPolicy,
    Model,
    PhotonicCluster,
    PhotonicSession,
    ReLU,
    ReplicatedModel,
    RoutingPolicy,
    RunReport,
)
from repro.errors import ClusterSaturatedError, ConfigurationError
from repro.runtime.serving import synthetic_trace


@pytest.fixture()
def pair(tech):
    """A 2-core round-robin cluster on small tiles."""
    return PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                           cache_capacity=4, max_batch=16)


def replay(front_door, trace):
    """Push a synthetic trace through any submit()-shaped front door."""
    futures = [front_door.submit(weights, x) for _, weights, x in trace]
    front_door.flush()
    return futures


class TestConstruction:
    def test_fleet_geometry(self, pair):
        assert pair.cores == 2
        assert len(pair.sessions) == 2
        assert pair.rows == 4 and pair.columns == 6
        assert all(isinstance(s, PhotonicSession) for s in pair.sessions)
        # Every slot is a full core: distinct schedulers and caches.
        assert pair.sessions[0].scheduler is not pair.sessions[1].scheduler
        assert pair.sessions[0].tiled_cache is not pair.sessions[1].tiled_cache

    def test_validation(self, tech):
        with pytest.raises(ConfigurationError, match="cores"):
            PhotonicCluster(cores=0, technology=tech, grid=(4, 6))
        with pytest.raises(ConfigurationError, match="max_pending"):
            PhotonicCluster(cores=1, technology=tech, grid=(4, 6), max_pending=0)
        with pytest.raises(ConfigurationError, match="RoutingPolicy"):
            PhotonicCluster(cores=1, technology=tech, grid=(4, 6),
                            routing="round_robin")

    def test_default_routing_is_round_robin(self, pair):
        assert pair.routing == RoutingPolicy.round_robin()
        assert pair.routing.describe() == "round_robin"

    def test_flush_policy_shared_by_all_slots(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_batch(3))
        assert all(s.flush_policy == FlushPolicy.max_batch(3)
                   for s in cluster.sessions)
        assert cluster.flush_policy == FlushPolicy.max_batch(3)


class TestRoutingPolicies:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown routing"):
            RoutingPolicy(kind="random")

    def test_single_core_short_circuits(self):
        for policy in (RoutingPolicy.round_robin(), RoutingPolicy.least_loaded(),
                       RoutingPolicy.cache_affinity()):
            assert policy.select(b"key", [5], cursor=9) == 0

    def test_round_robin_cycles(self):
        policy = RoutingPolicy.round_robin()
        picks = [policy.select(None, [0, 0, 0], cursor) for cursor in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_minimum_and_breaks_ties_low(self):
        policy = RoutingPolicy.least_loaded()
        assert policy.select(None, [3, 1, 2], cursor=0) == 1
        assert policy.select(None, [2, 2, 2], cursor=5) == 0

    def test_cache_affinity_is_deterministic_per_key(self):
        policy = RoutingPolicy.cache_affinity()
        first = policy.select(b"program-a", [0, 0, 0, 0], cursor=0)
        assert all(policy.select(b"program-a", [9, 9, 9, 9], cursor=c) == first
                   for c in range(5))
        # Distinct keys spread over the fleet (not all on one slot).
        keys = [f"program-{i}".encode() for i in range(32)]
        slots = {policy.select(key, [0, 0, 0, 0], 0) for key in keys}
        assert len(slots) > 1

    def test_cache_affinity_keyless_falls_back_to_cursor(self):
        policy = RoutingPolicy.cache_affinity()
        assert policy.select(None, [0, 0, 0], cursor=4) == 1

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one core"):
            RoutingPolicy.round_robin().select(None, [], 0)


class TestRoutedSubmits:
    def test_round_robin_spreads_requests(self, pair):
        rng = np.random.default_rng(1)
        weights = rng.integers(0, 8, (4, 6))
        replay(pair, [(0, weights, rng.uniform(0.0, 1.0, 6))
                      for _ in range(6)])
        report = pair.report()
        assert report.routed == (3, 3)

    def test_least_loaded_balances_pending_work(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  routing=RoutingPolicy.least_loaded())
        rng = np.random.default_rng(2)
        weights = rng.integers(0, 8, (4, 6))
        for _ in range(8):
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        assert [s.pending for s in cluster.sessions] == [4, 4]

    def test_cache_affinity_pins_programs_to_cores(self, tech):
        cluster = PhotonicCluster(cores=4, technology=tech, grid=(4, 6),
                                  routing=RoutingPolicy.cache_affinity())
        rng = np.random.default_rng(3)
        tenants = [rng.integers(0, 8, (4, 6)) for _ in range(3)]
        for turn in range(24):
            weights = tenants[turn % 3]
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        cluster.flush()
        # Each tenant's program compiled on exactly one core: fleet-wide
        # misses equal the tenant count, not tenants x cores.
        report = cluster.report()
        assert report.total.cache_misses == 3

    def test_conv_route_and_affinity(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 9),
                                  routing=RoutingPolicy.cache_affinity())
        rng = np.random.default_rng(4)
        bank = rng.normal(0.0, 1.0, (2, 3, 3))
        futures = [cluster.submit_conv(bank, rng.uniform(0.0, 1.0, (5, 5)))
                   for _ in range(4)]
        cluster.flush()
        assert all(future.value.shape == (2, 3, 3) for future in futures)
        # One bank -> one core -> one differential program compile.
        assert cluster.report().total.cache_misses == 1
        homes = [s for s in cluster.sessions if s.tiled_cache.misses]
        assert len(homes) == 1

    def test_conv_affinity_keys_on_quantized_program(self, tech):
        """Float banks that quantize to the same differential program
        must route to the same core — the affinity key is the quantized
        program (what the session caches on), not the float bytes."""
        cluster = PhotonicCluster(cores=4, technology=tech, grid=(4, 9),
                                  routing=RoutingPolicy.cache_affinity())
        rng = np.random.default_rng(6)
        bank = rng.normal(0.0, 1.0, (2, 3, 3))
        cluster.submit_conv(bank, rng.uniform(0.0, 1.0, (5, 5)))
        cluster.submit_conv(bank + 1e-12, rng.uniform(0.0, 1.0, (5, 5)))
        cluster.flush()
        report = cluster.report()
        # One home core, one coalesced group, one program compile — a
        # float-bytes key would have split this across two cores (two
        # compiles of the same program).
        assert report.total.cache_misses == 1
        assert sum(1 for s in cluster.sessions if s.tiled_cache.misses) == 1

    def test_gain_passes_through(self, pair, tech):
        rng = np.random.default_rng(5)
        weights = rng.integers(1, 4, (4, 6))
        x = rng.uniform(0.1, 0.3, 6)
        native = pair.submit(weights, x)
        calibrated = pair.submit(weights, x, gain="auto")
        pair.flush()
        exact = weights @ x
        # gain='auto' reached the routed core: the calibrated request
        # resolves inside the scaled-down quantization bin, the native
        # one only inside the full-range bin.
        core = pair.sessions[0].core
        native_bin = (pair.columns * core.max_weight) / core.row_adcs[0].levels
        auto_gain = (pair.columns * core.max_weight) / int(weights.sum(axis=1).max())
        assert auto_gain > 1.0
        assert np.abs(native.value - exact).max() <= native_bin
        assert np.abs(calibrated.value - exact).max() <= native_bin / auto_gain


class TestSingleCoreEquivalence:
    """PhotonicCluster(cores=1) must be the existing PhotonicSession,
    bit for bit, on the serve-bench scenarios."""

    def test_dense_trace_bit_for_bit(self, tech):
        trace = list(synthetic_trace(requests=48, rows=4, columns=6, seed=11))
        session = PhotonicSession(technology=tech, grid=(4, 6),
                                  cache_capacity=4, max_batch=16,
                                  flush_policy=FlushPolicy.max_batch(16))
        cluster = PhotonicCluster(cores=1, technology=tech, grid=(4, 6),
                                  cache_capacity=4, max_batch=16,
                                  flush_policy=FlushPolicy.max_batch(16))
        session_futures = replay(session, trace)
        cluster_futures = replay(cluster, trace)
        for ours, theirs in zip(cluster_futures, session_futures):
            np.testing.assert_array_equal(ours.value, theirs.value)
            if theirs.codes is None:
                assert ours.codes is None
            else:
                np.testing.assert_array_equal(ours.codes, theirs.codes)
        # RunReport numbers including flush counts are identical.
        assert cluster.report().total == session.report()
        assert cluster.flushes == session.flushes

    def test_conv_trace_bit_for_bit(self, tech):
        rng = np.random.default_rng(12)
        bank = rng.normal(0.0, 1.0, (3, 3, 3))
        images = [rng.uniform(0.0, 1.0, (7, 7)) for _ in range(5)]
        session = PhotonicSession(technology=tech, grid=(4, 9))
        cluster = PhotonicCluster(cores=1, technology=tech, grid=(4, 9))
        session_futures = [session.submit_conv(bank, image) for image in images]
        cluster_futures = [cluster.submit_conv(bank, image) for image in images]
        session.flush()
        cluster.flush()
        for ours, theirs in zip(cluster_futures, session_futures):
            np.testing.assert_array_equal(ours.value, theirs.value)
        assert cluster.report().total == session.report()

    def test_single_core_routing_policies_identical(self, tech):
        trace = list(synthetic_trace(requests=24, rows=4, columns=6, seed=13))
        reports = []
        for routing in (RoutingPolicy.round_robin(), RoutingPolicy.least_loaded(),
                        RoutingPolicy.cache_affinity()):
            cluster = PhotonicCluster(cores=1, technology=tech, grid=(4, 6),
                                      routing=routing)
            replay(cluster, trace)
            reports.append(cluster.report().total)
        assert reports[0] == reports[1] == reports[2]


class TestQoS:
    def test_saturation_sheds_best_effort(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  max_pending=2)
        rng = np.random.default_rng(21)
        weights = rng.integers(0, 8, (4, 6))
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        with pytest.raises(ClusterSaturatedError, match="max_pending=2"):
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        # The typed error is also a RuntimeError, and the shed request
        # is counted but never queued.
        with pytest.raises(RuntimeError, match="saturated"):
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        assert cluster.pending == 2
        assert cluster.report().shed == 2

    def test_priority_bypasses_shedding(self, tech):
        cluster = PhotonicCluster(cores=1, technology=tech, grid=(4, 6),
                                  max_pending=1)
        rng = np.random.default_rng(22)
        weights = rng.integers(0, 8, (4, 6))
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        urgent = cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=5)
        assert cluster.pending == 2
        cluster.flush()
        assert urgent.done and cluster.report().shed == 0

    def test_draining_reopens_admission(self, tech):
        cluster = PhotonicCluster(cores=1, technology=tech, grid=(4, 6),
                                  max_pending=1)
        rng = np.random.default_rng(23)
        weights = rng.integers(0, 8, (4, 6))
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        with pytest.raises(ClusterSaturatedError):
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        cluster.flush()
        admitted = cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        assert len(admitted.result()) == 4

    def test_priority_orders_the_fleet_flush(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6))
        rng = np.random.default_rng(24)
        weights = rng.integers(0, 8, (4, 6))
        # Core 0 gets best-effort traffic, core 1 a priority request.
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6), priority=3)
        order = []
        for index, session in enumerate(cluster.sessions):
            original = session.flush
            def tracked(index=index, original=original):
                order.append(index)
                return original()
            session.flush = tracked
        cluster.flush()
        assert order == [1, 0]        # priority core drains first

    def test_rejected_submit_leaves_no_bookkeeping(self, pair):
        """A submit the session rejects must neither count as routed
        nor pin a phantom priority on the core it would have used."""
        rng = np.random.default_rng(26)
        with pytest.raises(ConfigurationError, match="shape"):
            pair.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 5),
                        priority=9)
        report = pair.report()
        assert report.routed == (0, 0) and report.total.requests == 0
        assert pair._pending_priority == [None, None]

    def test_auto_flush_clears_priority_marker(self, tech):
        """A priority request that its core's flush policy resolves
        immediately leaves nothing pending to prioritize — the next
        fleet flush must not keep ranking that idle core first."""
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_batch(1))
        rng = np.random.default_rng(27)
        future = cluster.submit(rng.integers(0, 8, (4, 6)),
                                rng.uniform(0.0, 1.0, 6), priority=5)
        assert future.done                     # max_batch(1) flushed inline
        assert cluster._pending_priority == [None, None]

    def test_priority_validation(self, pair):
        rng = np.random.default_rng(25)
        with pytest.raises(ConfigurationError, match="priority"):
            pair.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6),
                        priority=1.5)


class TestReplicatedModels:
    def test_replicas_land_on_distinct_cores(self, tech):
        cluster = PhotonicCluster(cores=3, technology=tech, grid=(4, 6))
        rng = np.random.default_rng(31)
        model = Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6))))
        endpoint = cluster.compile(model, replicas=2)
        assert isinstance(endpoint, ReplicatedModel)
        assert endpoint.replicas == 2
        assert len(set(endpoint.core_indices)) == 2
        assert cluster.models == (endpoint,)

    def test_replicas_cannot_exceed_cores(self, pair):
        rng = np.random.default_rng(32)
        model = Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6))))
        with pytest.raises(ConfigurationError, match="replicas"):
            pair.compile(model, replicas=3)
        with pytest.raises(ConfigurationError, match="replicas"):
            pair.compile(model, replicas=0)

    def test_batches_fan_out_and_match_single_core(self, tech):
        rng = np.random.default_rng(33)
        model = Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6))), ReLU(),
                                 Dense(rng.normal(0.0, 0.5, (2, 3))))
        calibration = rng.uniform(0.0, 1.0, (8, 6))
        batches = [rng.uniform(0.0, 1.0, (4, 6)) for _ in range(4)]

        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6))
        replicated = cluster.compile(model, calibration=calibration, replicas=2)
        futures = [replicated.submit(batch) for batch in batches]
        cluster.flush()

        session = PhotonicSession(technology=tech, grid=(4, 6))
        reference = session.compile(model, calibration=calibration)
        for batch, future in zip(batches, futures):
            np.testing.assert_array_equal(future.value, reference.predict(batch))
        # Round-robin fan-out: both replicas served half the batches.
        report = cluster.report()
        assert report.routed == (2, 2)
        assert all(r.requests == 2 for r in report.per_core)

    def test_replica_stage_accounting_lands_per_core(self, tech):
        rng = np.random.default_rng(34)
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6))
        replicated = cluster.compile(
            Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6)))), replicas=2)
        for _ in range(2):
            replicated.submit(rng.uniform(0.0, 1.0, (4, 6)))
        cluster.flush()
        report = cluster.report()
        # Each core ran one 4-sample differential batch: 8 ADC slots.
        assert tuple(r.samples for r in report.per_core) == (8, 8)
        assert report.imbalance == 1.0
        assert report.total.analog_energy > 0.0

    def test_model_placement_spreads_across_models(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6))
        rng = np.random.default_rng(35)
        first = cluster.compile(
            Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6)))))
        second = cluster.compile(
            Model.sequential(Dense(rng.normal(0.0, 0.5, (2, 6)))))
        assert first.core_indices != second.core_indices

    def test_replicated_submit_respects_admission(self, tech):
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  max_pending=1)
        rng = np.random.default_rng(36)
        replicated = cluster.compile(
            Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6)))), replicas=2)
        replicated.submit(rng.uniform(0.0, 1.0, (2, 6)))
        with pytest.raises(ClusterSaturatedError):
            replicated.submit(rng.uniform(0.0, 1.0, (2, 6)))
        urgent = replicated.submit(rng.uniform(0.0, 1.0, (2, 6)), priority=1)
        cluster.flush()
        assert urgent.done


class TestClusterReport:
    def test_totals_are_per_core_sums(self, pair):
        rng = np.random.default_rng(41)
        replay(pair, [(0, rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
                      for _ in range(6)])
        report = pair.report()
        assert isinstance(report, ClusterReport)
        assert report.cores == 2 and report.routing == "round_robin"
        assert report.total == RunReport.combined(report.per_core)
        assert report.total.requests == 6
        assert sum(report.routed) == 6 and report.shed == 0
        assert report.total.flush_index == sum(r.flush_index
                                               for r in report.per_core)

    def test_utilization_and_imbalance(self, pair):
        rng = np.random.default_rng(42)
        replay(pair, [(0, rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
                      for _ in range(8)])
        report = pair.report()
        assert sum(report.utilization) == pytest.approx(1.0)
        assert report.imbalance == pytest.approx(1.0)   # even round-robin split
        assert report.fleet_latency == max(r.total_latency
                                           for r in report.per_core)

    def test_idle_fleet_report(self, pair):
        report = pair.report()
        assert report.total.requests == 0
        assert report.utilization == (0.0, 0.0)
        assert report.imbalance == 1.0
        assert report.fleet_latency == 0.0

    def test_report_prints_fleet_and_cores(self, pair):
        rng = np.random.default_rng(43)
        replay(pair, [(0, rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
                      for _ in range(4)])
        text = str(pair.report())
        assert "cluster of 2 cores" in text
        assert "core 0" in text and "core 1" in text
        assert "imbalance" in text

    def test_zero_request_flush_keeps_ratios_safe(self, pair):
        """A flush firing with nothing queued must not divide by zero
        anywhere in the report (regression)."""
        assert pair.flush() == 0
        report = pair.report()
        assert report.utilization == (0.0, 0.0)
        assert report.imbalance == 1.0
        assert report.fleet_latency == 0.0
        assert report.cache_hit_rate == 0.0
        assert "imbalance" in str(report)

    def test_empty_fleet_report_guards(self):
        """ClusterReport over an empty per-core tuple (no fleet) stays
        total-function: no max() over an empty sequence, no division
        by a zero fleet (regression)."""
        report = ClusterReport(
            cores=0,
            routing="round_robin",
            total=RunReport.combined(()),
            per_core=(),
            routed=(),
            shed=0,
        )
        assert report.fleet_latency == 0.0
        assert report.imbalance == 1.0
        assert report.utilization == ()
        assert report.cache_hit_rate == 0.0
        assert "cluster of 0 cores" in str(report)

    def test_evictions_surface_in_cluster_report(self, tech):
        """The WeightProgramCache eviction counter threads through
        SchedulerStats -> RunReport -> ClusterReport."""
        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  cache_capacity=2,
                                  routing=RoutingPolicy.cache_affinity())
        rng = np.random.default_rng(44)
        tenants = [rng.integers(0, 8, (4, 6)) for _ in range(8)]
        for weights in tenants:
            cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
            cluster.flush()
        report = cluster.report()
        assert report.total.cache_evictions > 0
        assert report.total.cache_evictions == sum(r.cache_evictions
                                                   for r in report.per_core)
        per_core_caches = sum(s.scheduler.cache.evictions
                              for s in cluster.sessions)
        assert report.total.cache_evictions == per_core_caches


class TestClusterFlushAndPoll:
    def test_flush_resolves_fleet_wide(self, pair):
        rng = np.random.default_rng(51)
        futures = [pair.submit(rng.integers(0, 8, (4, 6)),
                               rng.uniform(0.0, 1.0, 6)) for _ in range(5)]
        assert pair.pending == 5
        assert pair.flush() == 5
        assert pair.pending == 0
        assert all(future.done for future in futures)

    def test_poll_enforces_deadline_without_new_traffic(self, tech):
        import time

        cluster = PhotonicCluster(cores=2, technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_delay(0.005))
        rng = np.random.default_rng(52)
        future = cluster.submit(rng.integers(0, 8, (4, 6)),
                                rng.uniform(0.0, 1.0, 6))
        assert cluster.poll() == 0            # deadline not reached
        assert not future.done
        time.sleep(0.01)
        assert cluster.poll() == 1            # lone request now past deadline
        assert future.done
