"""Tests for the noise-floor analyses."""

import math

import pytest

from repro.analysis.noise import (
    ComputePathNoiseAnalysis,
    EoAdcNoiseAnalysis,
    PsramNoiseAnalysis,
    shot_noise_sigma,
    thermal_noise_sigma,
    threshold_error_probability,
)
from repro.errors import ConfigurationError


def test_shot_noise_scaling():
    base = shot_noise_sigma(10e-6, 4e9)
    assert shot_noise_sigma(40e-6, 4e9) == pytest.approx(2 * base)
    assert shot_noise_sigma(10e-6, 16e9) == pytest.approx(2 * base)
    with pytest.raises(ConfigurationError):
        shot_noise_sigma(-1e-6, 4e9)


def test_thermal_noise_scaling():
    base = thermal_noise_sigma(4e9)
    assert thermal_noise_sigma(16e9) == pytest.approx(2 * base)
    assert thermal_noise_sigma(4e9, load_resistance=40e3) == pytest.approx(base / 2)
    with pytest.raises(ConfigurationError):
        thermal_noise_sigma(0.0)


def test_threshold_error_probability_limits():
    assert threshold_error_probability(1e-6, 0.0) == 0.0
    assert threshold_error_probability(0.0, 1e-6) == pytest.approx(0.5)
    # One sigma of margin ~ 15.9 % error.
    assert threshold_error_probability(1e-6, 1e-6) == pytest.approx(0.1587, abs=1e-3)
    # More margin -> less error.
    assert threshold_error_probability(3e-6, 1e-6) < threshold_error_probability(
        1e-6, 1e-6
    )


class TestEoAdcNoise:
    def test_paper_operating_point_has_huge_margin(self, tech):
        analysis = EoAdcNoiseAnalysis(tech)
        assert analysis.worst_case_margin() > 1e-6  # > 1 uA of margin
        assert analysis.code_error_probability() < 1e-50

    def test_margin_shrinks_with_power(self, tech):
        analysis = EoAdcNoiseAnalysis(tech)
        assert analysis.worst_case_margin(20e-6) < analysis.worst_case_margin(200e-6)

    def test_minimum_power_below_paper_choice(self, tech):
        """The paper's 200 uW leaves an order of magnitude of optical
        headroom at a 1e-12 code-error target."""
        analysis = EoAdcNoiseAnalysis(tech)
        minimum = analysis.minimum_channel_power(1e-12)
        assert 5e-6 < minimum < 100e-6
        assert minimum < tech.eoadc.channel_power

    def test_tighter_target_needs_more_power(self, tech):
        analysis = EoAdcNoiseAnalysis(tech)
        assert analysis.minimum_channel_power(1e-15) > analysis.minimum_channel_power(
            1e-6
        )

    def test_target_validation(self, tech):
        with pytest.raises(ConfigurationError):
            EoAdcNoiseAnalysis(tech).minimum_channel_power(0.7)


class TestComputePathNoise:
    def test_analog_path_outresolves_the_eoadc(self, tech):
        """The analog dot product supports far more than 3 bits — the
        eoADC is the resolution bottleneck, as the paper implies."""
        analysis = ComputePathNoiseAnalysis(tech)
        assert analysis.effective_bits(16) > tech.eoadc.bits + 2

    def test_snr_improves_with_utilization(self, tech):
        analysis = ComputePathNoiseAnalysis(tech)
        assert analysis.snr_db(16, utilization=1.0) > analysis.snr_db(
            16, utilization=0.1
        )

    def test_utilization_validation(self, tech):
        with pytest.raises(ConfigurationError):
            ComputePathNoiseAnalysis(tech).snr_db(16, utilization=0.0)


class TestPsramNoise:
    def test_margin_grows_with_bias(self, tech):
        analysis = PsramNoiseAnalysis(tech)
        assert analysis.hold_margin(20e-6) > analysis.hold_margin(10e-6)

    def test_paper_bias_is_disturb_free(self, tech):
        analysis = PsramNoiseAnalysis(tech)
        assert analysis.disturb_probability() < 1e-20

    def test_minimum_bias_below_paper_choice(self, tech):
        """-20 dBm (10 uW) holds with several-x margin over the noise
        floor."""
        analysis = PsramNoiseAnalysis(tech)
        minimum = analysis.minimum_bias_power(1e-15)
        assert minimum < tech.psram.bias_power
        assert minimum > 0.1e-6

    def test_target_validation(self, tech):
        with pytest.raises(ConfigurationError):
            PsramNoiseAnalysis(tech).minimum_bias_power(1.0)
