"""Unit tests for the 1-bit photonic multiplier."""

import numpy as np
import pytest

from repro.core.multiplier import OneBitPhotonicMultiplier
from repro.errors import ConfigurationError


@pytest.fixture()
def multiplier(tech):
    return OneBitPhotonicMultiplier(channel_index=0, technology=tech)


def test_weight_zero_drops_the_channel(multiplier):
    multiplier.bit = 0
    assert multiplier.multiply(100e-6) < 1e-6  # output ~ 0


def test_weight_one_passes_the_channel(multiplier):
    multiplier.bit = 1
    assert multiplier.multiply(100e-6) > 80e-6  # output ~ IN


def test_multiplication_is_linear_in_input(multiplier):
    multiplier.bit = 1
    assert multiplier.multiply(200e-6) == pytest.approx(
        2 * multiplier.multiply(100e-6)
    )


def test_contrast_exceeds_20db(multiplier):
    assert multiplier.contrast_db > 20.0


def test_channel_wavelength_follows_length_adjust(tech):
    for index in range(4):
        multiplier = OneBitPhotonicMultiplier(channel_index=index, technology=tech)
        expected = tech.wavelength + index * 2.33e-9
        assert multiplier.channel_wavelength == pytest.approx(expected, rel=1e-9)


def test_resonant_ring_transparent_at_other_channels(tech):
    """A w=0 ring on channel 0 must barely touch channels 1-3 (the
    paper's minimal-crosstalk claim)."""
    multiplier = OneBitPhotonicMultiplier(channel_index=0, technology=tech)
    multiplier.bit = 0
    other_channels = tech.wavelength + 2.33e-9 * np.arange(1, 4)
    transmissions = multiplier.thru_transmission(other_channels)
    assert np.all(transmissions > 0.99)


def test_bit_validation(multiplier):
    with pytest.raises(ConfigurationError):
        multiplier.bit = 2
    with pytest.raises(ConfigurationError):
        multiplier.multiply(-1e-6)
    with pytest.raises(ConfigurationError):
        OneBitPhotonicMultiplier(channel_index=-1)
