"""Unit tests for the ceiling-priority ROM decoder (paper Fig. 9)."""

import pytest

from repro.electronics.rom_decoder import CeilingPriorityRomDecoder, code_to_bits
from repro.errors import ConfigurationError, ConversionError


@pytest.fixture()
def decoder():
    return CeilingPriorityRomDecoder(bits=3)


def one_hot(index, channels=8):
    activations = [False] * channels
    activations[index] = True
    return activations


def test_one_hot_decoding(decoder):
    for code in range(8):
        assert decoder.decode(one_hot(code)) == code


def test_paper_examples(decoder):
    """Fig. 9: B2 -> 001, B7 -> 110, B4+B5 -> 100 (ceiling)."""
    assert decoder.decode(one_hot(1)) == 1  # B2 -> 001
    assert decoder.decode(one_hot(6)) == 6  # B7 -> 110
    boundary = [False] * 8
    boundary[3] = boundary[4] = True  # B4 and B5
    assert decoder.decode(boundary) == 4  # ceiling -> 100


def test_adjacent_pair_takes_ceiling(decoder):
    for lower in range(7):
        activations = [False] * 8
        activations[lower] = activations[lower + 1] = True
        assert decoder.decode(activations) == lower + 1


def test_no_activation_raises(decoder):
    with pytest.raises(ConversionError):
        decoder.decode([False] * 8)


def test_non_adjacent_raises_in_strict_mode(decoder):
    activations = [False] * 8
    activations[1] = activations[5] = True
    with pytest.raises(ConversionError):
        decoder.decode(activations)


def test_non_adjacent_takes_max_when_not_strict():
    decoder = CeilingPriorityRomDecoder(bits=3, strict=False)
    activations = [False] * 8
    activations[1] = activations[5] = True
    assert decoder.decode(activations) == 5


def test_contiguous_run_takes_ceiling(decoder):
    activations = [False] * 8
    activations[2] = activations[3] = activations[4] = True
    assert decoder.decode(activations) == 4


def test_decode_or_hold_keeps_previous_code(decoder):
    assert decoder.decode_or_hold([False] * 8, held_code=5) == 5
    assert decoder.decode_or_hold(one_hot(2), held_code=5) == 2


def test_wrong_width_rejected(decoder):
    with pytest.raises(ConfigurationError):
        decoder.decode([True] * 4)


def test_decode_bits(decoder):
    assert decoder.decode_bits(one_hot(4)) == (1, 0, 0)
    assert decoder.decode_bits(one_hot(1)) == (0, 0, 1)


def test_code_to_bits_round_trip():
    for bits in (1, 3, 5):
        for code in range(2**bits):
            expansion = code_to_bits(code, bits)
            assert len(expansion) == bits
            reconstructed = 0
            for bit in expansion:
                reconstructed = (reconstructed << 1) | bit
            assert reconstructed == code


def test_code_to_bits_bounds():
    with pytest.raises(ConfigurationError):
        code_to_bits(8, 3)
    with pytest.raises(ConfigurationError):
        code_to_bits(0, 0)
