"""Tests for the WDM vector-multiplication core (paper Fig. 7)."""

import numpy as np
import pytest

from repro.analysis.linearity import linearity_report
from repro.core.compute_core import VectorComputeCore
from repro.errors import ConfigurationError


def test_zero_weights_give_near_zero_current(tech):
    core = VectorComputeCore(4, 3, tech)
    core.load_weights([0, 0, 0, 0])
    leak = core.compute(np.ones(4))
    full = core.full_scale_current()
    assert leak < 0.02 * full  # only extinction-floor leakage


def test_zero_inputs_give_dark_current_only(small_core):
    current = small_core.compute(np.zeros(4))
    assert current < 1e-7


def test_output_scales_linearly_with_inputs(small_core):
    x = np.array([0.5, 0.25, 0.75, 0.1])
    assert small_core.compute(2 * x / 2) == pytest.approx(small_core.compute(x))
    half = small_core.compute(x / 2)
    assert 2 * half == pytest.approx(small_core.compute(x), rel=1e-9)


def test_normalized_output_tracks_ideal_dot_product(small_core):
    """The Fig. 7 claim: normalized PD current ~ expected products."""
    rng = np.random.default_rng(2)
    expected = []
    measured = []
    for _ in range(20):
        x = rng.uniform(0.0, 1.0, 4)
        expected.append(small_core.ideal_dot_product(x))
        measured.append(small_core.normalized_output(x))
    report = linearity_report(expected, measured)
    assert report.r_squared > 0.999
    assert report.slope == pytest.approx(1.0, abs=0.05)


def test_per_channel_pdk_mode_equals_joint_evaluation(small_core):
    """The paper's one-wavelength-at-a-time workaround must agree with
    the joint evaluation (linear, incoherent summation)."""
    rng = np.random.default_rng(3)
    for _ in range(5):
        x = rng.uniform(0.0, 1.0, 4)
        joint = small_core.compute(x)
        per_channel = small_core.compute_per_channel(x)
        assert per_channel == pytest.approx(joint, rel=1e-9)


def test_weight_bit_significance(tech):
    """Weight 4 (MSB) must produce ~4x the current of weight 1 (LSB)."""
    core = VectorComputeCore(4, 3, tech)
    x = np.array([1.0, 0.0, 0.0, 0.0])
    core.load_weights([1, 0, 0, 0])
    lsb_current = core.compute(x)
    core.load_weights([4, 0, 0, 0])
    msb_current = core.compute(x)
    assert msb_current / lsb_current == pytest.approx(4.0, rel=0.05)


def test_vector_longer_than_macro_tiles(tech):
    """A 1x16 vector uses four 1x4 macros with photocurrent summation
    (paper Section III)."""
    core = VectorComputeCore(16, 3, tech)
    assert core.macro_count == 4
    core.load_weights(np.full(16, 7))
    x = np.ones(16)
    current16 = core.compute(x)
    small = VectorComputeCore(4, 3, tech)
    small.load_weights(np.full(4, 7))
    current4 = small.compute(np.ones(4))
    assert current16 == pytest.approx(4 * current4, rel=1e-9)


def test_weights_stored_in_psram(small_core):
    assert small_core.weight_memory.word(0) == 7
    assert small_core.weight_memory.word(3) == 1
    assert np.array_equal(small_core.weights, [7, 3, 5, 1])


def test_weight_update_energy_accumulates(tech):
    core = VectorComputeCore(4, 3, tech)
    core.load_weights([7, 7, 7, 7])  # 12 switches from all-zero
    assert core.weight_update_energy() == pytest.approx(12 * 0.5e-12, rel=1e-3)


def test_power_ledger_contains_comb_and_bias(small_core):
    breakdown = small_core.power_ledger().breakdown()
    assert "input comb" in breakdown
    assert "pSRAM hold bias" in breakdown


def test_input_validation(small_core):
    with pytest.raises(ConfigurationError):
        small_core.compute(np.ones(3))
    with pytest.raises(ConfigurationError):
        small_core.compute(np.array([0.5, 0.5, 0.5, 1.5]))
    with pytest.raises(ConfigurationError):
        small_core.compute(-np.ones(4))


def test_weight_validation(tech):
    core = VectorComputeCore(4, 3, tech)
    with pytest.raises(ConfigurationError):
        core.load_weights([8, 0, 0, 0])
    with pytest.raises(ConfigurationError):
        core.load_weights([-1, 0, 0, 0])
    with pytest.raises(ConfigurationError):
        core.load_weights([1, 2, 3])
