"""Unit tests for the waveguide model."""

import pytest

from repro.config import WaveguideSpec
from repro.errors import ConfigurationError
from repro.photonics.signal import WDMSignal
from repro.photonics.waveguide import Waveguide


def test_loss_db_matches_length():
    guide = Waveguide(length=1e-2, spec=WaveguideSpec(loss_db_per_cm=2.0))
    assert guide.loss_db == pytest.approx(2.0)
    assert guide.power_transmission == pytest.approx(10 ** (-0.2), rel=1e-6)


def test_zero_length_is_transparent():
    guide = Waveguide(length=0.0)
    assert guide.power_transmission == 1.0
    assert guide.loss_db == 0.0


def test_negative_length_rejected():
    with pytest.raises(ConfigurationError):
        Waveguide(length=-1e-6)


def test_phase_scales_inversely_with_wavelength():
    guide = Waveguide(length=100e-6)
    assert guide.phase(1310e-9) > guide.phase(1550e-9)


def test_group_delay_positive_and_reasonable():
    guide = Waveguide(length=1e-3)  # 1 mm
    delay = guide.group_delay()
    # n_g ~ 3.9 -> ~13 ps/mm.
    assert delay == pytest.approx(13e-12, rel=0.05)


def test_propagate_scales_all_carriers():
    guide = Waveguide(length=1e-2, spec=WaveguideSpec(loss_db_per_cm=3.0))
    signal = WDMSignal([1310e-9, 1312e-9], [1e-3, 2e-3])
    out = guide.propagate(signal)
    assert out.total_power == pytest.approx(3e-3 * 10 ** (-0.3), rel=1e-6)


def test_port_protocol():
    guide = Waveguide(length=0.0)
    out = guide.propagate_ports({"in": WDMSignal.single(1310e-9, 1e-3)})
    assert out["out"].total_power == pytest.approx(1e-3)
