"""Tests for the input ring modulator and predistortion encoder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics.modulator import PredistortedEncoder, RingModulator


@pytest.fixture(scope="module")
def modulator(tech):
    return RingModulator(tech)


def test_transmission_monotone_across_drive(modulator):
    drives = np.linspace(0.0, modulator.drive_range, 101)
    transmissions = modulator.transmission(drives)
    assert np.all(np.diff(transmissions) > 0.0)


def test_usable_extinction(modulator):
    low, high = modulator.extinction
    assert 0.0 < low < high <= 1.0
    assert high - low > 0.1  # > 10 % swing to encode into


def test_raw_flank_is_visibly_nonlinear(modulator):
    """The Lorentzian flank deviates from a straight line by > 5 % —
    the reason predistortion exists."""
    assert modulator.nonlinearity() > 0.05


def test_drive_range_validation(modulator, tech):
    with pytest.raises(ConfigurationError):
        modulator.transmission(-0.1)
    with pytest.raises(ConfigurationError):
        modulator.transmission(modulator.drive_range + 0.1)
    with pytest.raises(ConfigurationError):
        RingModulator(tech, drive_range=0.0)


class TestPredistortion:
    @pytest.fixture(scope="class")
    def encoder(self, modulator):
        return PredistortedEncoder(modulator)

    def test_encode_endpoints(self, encoder):
        drives = encoder.encode([0.0, 1.0])
        assert drives[0] == pytest.approx(0.0, abs=1e-6)
        assert drives[1] == pytest.approx(encoder.modulator.drive_range, abs=1e-6)

    def test_round_trip_is_linear(self, encoder):
        """Predistortion must collapse the flank nonlinearity by
        orders of magnitude."""
        residual = encoder.residual_nonlinearity()
        assert residual < 1e-3
        assert residual < encoder.modulator.nonlinearity() / 50.0

    def test_realized_intensity_tracks_target(self, encoder):
        targets = np.array([0.1, 0.37, 0.62, 0.93])
        realized = encoder.realized_intensity(targets)
        assert np.max(np.abs(realized - targets)) < 1e-3

    def test_intensity_bounds_checked(self, encoder):
        with pytest.raises(ConfigurationError):
            encoder.encode([1.2])
        with pytest.raises(ConfigurationError):
            encoder.encode([-0.1])

    def test_table_size_validated(self, modulator):
        with pytest.raises(ConfigurationError):
            PredistortedEncoder(modulator, table_points=4)
