"""Unit tests for the power/energy ledgers."""

import pytest

from repro.electronics.power import EnergyLedger, LedgerEntry, PowerLedger
from repro.errors import ConfigurationError


def test_optical_entries_convert_to_wall_plug():
    ledger = PowerLedger(wall_plug_efficiency=0.23)
    ledger.add_optical("laser", 1e-3)
    assert ledger.total == pytest.approx(1e-3 / 0.23)
    assert ledger.entries[0].raw_value == pytest.approx(1e-3)


def test_electrical_entries_pass_through():
    ledger = PowerLedger()
    ledger.add_electrical("tia", 42e-3)
    assert ledger.total == pytest.approx(42e-3)


def test_category_totals():
    ledger = PowerLedger(wall_plug_efficiency=0.5)
    ledger.add_optical("bias", 1e-3)
    ledger.add_electrical("decoder", 3e-3)
    assert ledger.total_for("optical") == pytest.approx(2e-3)
    assert ledger.total_for("electrical") == pytest.approx(3e-3)
    assert ledger.total == pytest.approx(5e-3)


def test_breakdown_preserves_insertion_order():
    ledger = PowerLedger()
    ledger.add_electrical("b", 2.0)
    ledger.add_electrical("a", 1.0)
    assert list(ledger.breakdown()) == ["b", "a"]


def test_energy_over_duration():
    ledger = PowerLedger()
    ledger.add_electrical("x", 2.0)
    assert ledger.energy(3.0) == pytest.approx(6.0)
    with pytest.raises(ConfigurationError):
        ledger.energy(-1.0)


def test_energy_ledger_paper_psram_example():
    """0.5 pJ = (50 fJ write + 0.5 fJ bias)/0.23 + electrical rest."""
    ledger = EnergyLedger(wall_plug_efficiency=0.23)
    ledger.add_optical("write pulse", 1e-3 * 50e-12)
    ledger.add_optical("bias", 10e-6 * 50e-12)
    ledger.add_electrical("switching", 86.554e-15 * 1.8**2)
    assert ledger.total == pytest.approx(0.5e-12, rel=1e-3)


def test_report_renders_all_entries():
    ledger = PowerLedger()
    ledger.add_electrical("alpha", 1e-3)
    ledger.add_electrical("beta", 2e-3)
    report = ledger.report(scale=1e3, unit="mW")
    assert "alpha" in report and "beta" in report and "TOTAL" in report


def test_negative_entries_rejected():
    ledger = PowerLedger()
    with pytest.raises(ConfigurationError):
        ledger.add_electrical("bad", -1.0)
    with pytest.raises(ConfigurationError):
        LedgerEntry("bad", -1.0, "electrical", -1.0)


def test_invalid_wall_plug_efficiency():
    with pytest.raises(ConfigurationError):
        PowerLedger(wall_plug_efficiency=0.0)
