"""Tests for sharding large matrices across tile grids (repro.runtime.tiling)."""

import numpy as np
import pytest

from repro.core.psram import PsramBitcell
from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import MappingError
from repro.ml.mapping import MatrixTiler
from repro.runtime.tiling import TiledMatmul


def test_ragged_17x9_matches_device_matrix_tiler(tech):
    """A 17x9 matrix on 8x4 tiles (ragged in both dimensions) must agree
    with the seed MatrixTiler device path at the same gain."""
    rng = np.random.default_rng(17)
    weights = rng.integers(0, 8, (17, 9))
    tiled = TiledMatmul(weights, tile_rows=8, tile_columns=4, technology=tech, gain=1.0)
    assert (tiled.row_tiles, tiled.column_tiles) == (3, 3)

    core = PhotonicTensorCore(rows=8, columns=4, technology=tech)
    reference = MatrixTiler(core)
    for _ in range(3):
        x = rng.uniform(0.0, 1.0, 9)
        assert np.allclose(tiled.matvec(x), reference.matvec(weights, x))


def test_40x40_on_16x16_tiles_within_quantization_envelope(tech):
    """Acceptance: a 40x40 workload on 16x16 tiles runs end-to-end with
    error vs float W @ x bounded by the tiling quantization envelope."""
    rng = np.random.default_rng(40)
    weights = rng.integers(0, 8, (40, 40))
    tiled = TiledMatmul(weights, tile_rows=16, tile_columns=16, technology=tech)
    assert tiled.tile_count == 9
    assert np.all(tiled.gains >= 1.0)

    batch = rng.uniform(0.0, 1.0, (40, 4))
    estimates = tiled.matmul(batch)
    exact = weights @ batch
    bound = tiled.quantization_error_bound()
    assert np.all(np.abs(estimates - exact) <= bound[:, np.newaxis])
    # Relative to the workload's full scale the error stays small.
    relative = np.abs(estimates - exact).max() / np.abs(exact).max()
    assert relative < 0.2


def test_auto_gain_tightens_the_envelope(tech):
    rng = np.random.default_rng(5)
    weights = rng.integers(0, 4, (20, 20))  # small weights leave ADC range idle
    tiled = TiledMatmul(weights, tile_rows=16, tile_columns=16, technology=tech)
    auto_bound = tiled.quantization_error_bound()
    native_bound = tiled.quantization_error_bound(gain=1.0)
    assert np.all(auto_bound <= native_bound)
    assert np.any(tiled.gains > 1.0)

    batch = rng.uniform(0.0, 1.0, (20, 3))
    estimates = tiled.matmul(batch)
    assert np.all(np.abs(estimates - weights @ batch) <= auto_bound[:, np.newaxis])


def test_plan_covers_matrix_with_ragged_edges(tech):
    weights = np.zeros((17, 9), dtype=int)
    tiled = TiledMatmul(weights, tile_rows=8, tile_columns=4, technology=tech)
    plan = tiled.plan()
    assert len(plan) == 9
    last = plan[-1]
    assert last["rows"] == (16, 17)
    assert last["columns"] == (8, 9)
    # Zero blocks fall back to unit gain.
    assert all(entry["gain"] == 1.0 for entry in plan)


def test_weight_update_energy_is_order_invariant(tech):
    """Regression: each block's load energy must be measured from a
    cleared array, not from the previous block's residue on the shared
    probe — swapping two tile bands must not change the grid energy."""
    rng = np.random.default_rng(44)
    block_a = rng.integers(0, 8, (4, 4))
    block_b = rng.integers(0, 8, (4, 4))
    # Ensure the blocks genuinely differ in set bits, so the old
    # residue-dependent accounting would disagree between orders.
    popcount = lambda block: sum(bin(int(v)).count("1") for v in block.ravel())
    assert popcount(block_a) != popcount(block_b)

    forward = TiledMatmul(
        np.vstack([block_a, block_b]), tile_rows=4, tile_columns=4, technology=tech
    )
    swapped = TiledMatmul(
        np.vstack([block_b, block_a]), tile_rows=4, tile_columns=4, technology=tech
    )
    assert forward.weight_update_energy == pytest.approx(swapped.weight_update_energy)

    # From cleared arrays the grid energy is exactly one switch event
    # per set weight bit, independent of the tiling geometry.
    per_switch = PsramBitcell(tech).switching_energy_ledger(state_flipped=True).total
    total_bits = popcount(block_a) + popcount(block_b)
    assert forward.weight_update_energy == pytest.approx(total_bits * per_switch)
    ragged = TiledMatmul(
        np.vstack([block_a, block_b]), tile_rows=3, tile_columns=3, technology=tech
    )
    assert ragged.weight_update_energy == pytest.approx(total_bits * per_switch)


def test_matvec_and_batch_shapes(tech):
    rng = np.random.default_rng(2)
    weights = rng.integers(0, 8, (10, 6))
    tiled = TiledMatmul(weights, tile_rows=8, tile_columns=4, technology=tech)
    single = tiled.matvec(rng.uniform(0.0, 1.0, 6))
    assert single.shape == (10,)
    batched = tiled.matmul(rng.uniform(0.0, 1.0, (6, 5)))
    assert batched.shape == (10, 5)


def test_validation_errors(tech):
    rng = np.random.default_rng(3)
    with pytest.raises(MappingError, match="2-D"):
        TiledMatmul(np.ones(4, dtype=int), tile_rows=2, tile_columns=2, technology=tech)
    with pytest.raises(MappingError, match=r"\[0, 7\]"):
        TiledMatmul(np.full((2, 2), 9), tile_rows=2, tile_columns=2, technology=tech)
    with pytest.raises(MappingError, match="gain"):
        TiledMatmul(np.ones((2, 2), dtype=int), tile_rows=2, tile_columns=2,
                    technology=tech, gain=-1.0)
    tiled = TiledMatmul(rng.integers(0, 8, (4, 4)), tile_rows=2, tile_columns=2,
                        technology=tech)
    with pytest.raises(MappingError, match=r"\(3,\)"):
        tiled.matvec(np.ones(3) * 0.5)
    with pytest.raises(MappingError, match=r"\(3, 2\)"):
        tiled.matmul(np.ones((3, 2)) * 0.5)
