"""Unit tests for laser sources, pulses, combs and absorbers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics.absorber import Absorber
from repro.photonics.laser import CWLaser, FrequencyComb, OpticalPulse
from repro.photonics.signal import WDMSignal


def test_cw_laser_signal_and_wall_plug():
    laser = CWLaser(1310.5e-9, 1e-3, wall_plug_efficiency=0.23)
    assert laser.signal().total_power == pytest.approx(1e-3)
    assert laser.wall_plug_power == pytest.approx(1e-3 / 0.23)
    assert laser.energy(1e-9) == pytest.approx(1e-3 / 0.23 * 1e-9)


def test_cw_laser_rejects_bad_arguments():
    with pytest.raises(ConfigurationError):
        CWLaser(1310e-9, -1e-3)
    with pytest.raises(ConfigurationError):
        CWLaser(1310e-9, 1e-3, wall_plug_efficiency=0.0)
    with pytest.raises(ConfigurationError):
        CWLaser(1310e-9, 1e-3).energy(-1.0)


def test_optical_pulse_window_and_energy():
    """The pSRAM write stimulus: 50 ps at 0 dBm."""
    pulse = OpticalPulse(1310.5e-9, 1e-3, start_time=10e-12, width=50e-12)
    assert pulse.power_at(9e-12) == 0.0
    assert pulse.power_at(30e-12) == pytest.approx(1e-3)
    assert pulse.power_at(60.1e-12) == 0.0
    assert pulse.optical_energy == pytest.approx(50e-15)
    assert pulse.wall_plug_energy == pytest.approx(50e-15 / 0.23)


def test_frequency_comb_wavelength_grid():
    comb = FrequencyComb(1310.5e-9, 2.33e-9, line_count=4, power_per_line=200e-6)
    expected = 1310.5e-9 + 2.33e-9 * np.arange(4)
    assert np.allclose(comb.wavelengths, expected)
    assert comb.total_power == pytest.approx(800e-6)


def test_frequency_comb_modulation_encodes_vector():
    comb = FrequencyComb(1310.5e-9, 2.33e-9, line_count=4, power_per_line=200e-6)
    signal = comb.modulated([1.0, 0.5, 0.0, 0.25])
    assert signal.power_at(comb.wavelengths[0]) == pytest.approx(200e-6)
    assert signal.power_at(comb.wavelengths[1]) == pytest.approx(100e-6)
    assert signal.power_at(comb.wavelengths[2]) == 0.0


def test_frequency_comb_modulation_bounds():
    comb = FrequencyComb(1310.5e-9, 2.33e-9, line_count=2, power_per_line=1e-3)
    with pytest.raises(ConfigurationError):
        comb.modulated([1.5, 0.0])
    with pytest.raises(ConfigurationError):
        comb.modulated([0.5])


def test_absorber_records_power():
    absorber = Absorber()
    swallowed = absorber.absorb(WDMSignal.single(1310e-9, 3e-6))
    assert swallowed == pytest.approx(3e-6)
    assert absorber.last_absorbed_power == pytest.approx(3e-6)
    assert absorber.propagate_ports({"in": WDMSignal.single(1310e-9, 1e-6)}) == {}
