"""Transient tests for the eoADC (paper Fig. 9)."""

import numpy as np
import pytest

from repro.core.eoadc import EoAdc
from repro.errors import ConfigurationError
from repro.sim.waveform import StepSequence


@pytest.fixture(scope="module")
def fig9_record(ideal_adc):
    sequence = StepSequence([0.72, 2.0, 3.3], period=1.0 / 8e9)
    return ideal_adc.transient_convert(sequence, duration=sequence.duration)


def test_fig9_codes(fig9_record):
    """0.72 V -> 001, 2.0 V -> 100 (ceiling), 3.3 V -> 110 at 8 GS/s."""
    assert fig9_record.codes == [1, 4, 6]
    assert fig9_record.final_code == 6


def test_fig9_sample_times_at_8gsps(fig9_record):
    periods = np.diff(fig9_record.sample_times)
    assert np.allclose(periods, 125e-12, rtol=1e-6)


def test_fig9_single_activation_for_interior_inputs(fig9_record):
    """During the 0.72 V phase only B2 reaches the high rail."""
    at = 120e-12
    rails = [fig9_record.recorder.waveform(f"B{k}").value_at(at) for k in range(1, 9)]
    assert rails[1] > 1.6  # B2 active
    others = [rail for index, rail in enumerate(rails) if index != 1]
    assert max(others) < 0.2


def test_fig9_boundary_two_activations(fig9_record):
    """During the 2.0 V phase both B4 and B5 cross the trip point just
    before the sample instant (bin-edge case; the crossing is late
    because the asymptotic thru power sits barely under threshold)."""
    at = 249.5e-12
    b4 = fig9_record.recorder.waveform("B4").value_at(at)
    b5 = fig9_record.recorder.waveform("B5").value_at(at)
    assert b4 > 0.9 and b5 > 0.9


def test_activation_latency_fits_sample_period(ideal_adc):
    """A mid-bin step settles its activation well inside 125 ps."""
    sequence = StepSequence([1.25], period=125e-12)
    record = ideal_adc.transient_convert(sequence, duration=125e-12)
    b3 = record.recorder.waveform("B3")
    crossings = b3.crossings(0.9, rising=True)
    assert crossings and crossings[0] < 100e-12


def test_no_tia_too_slow_for_8gsps_but_fine_at_416msps(tech):
    """The same converter without its read chain misses codes at 8 GS/s
    yet resolves them at the paper's 416.7 MS/s."""
    adc = EoAdc(tech, trim_errors=np.zeros(8), use_read_chain=False)
    fast = adc.transient_convert(
        StepSequence([3.3], period=125e-12), duration=125e-12, sample_rate=8e9
    )
    assert fast.codes[0] != 6  # not settled: held/partial code

    adc2 = EoAdc(tech, trim_errors=np.zeros(8), use_read_chain=False)
    slow_period = 1.0 / 416.7e6
    slow = adc2.transient_convert(
        StepSequence([3.3], period=slow_period),
        duration=slow_period,
        time_step=2e-12,
    )
    assert slow.codes[0] == 6


def test_transient_requires_full_period(ideal_adc):
    with pytest.raises(ConfigurationError):
        ideal_adc.transient_convert(lambda t: 1.0, duration=10e-12)


def test_code_waveform_recorded(fig9_record):
    code = fig9_record.recorder.waveform("code")
    assert code.final_value() == 6.0
