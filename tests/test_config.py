"""Unit tests for the calibrated technology configuration."""

import math

import pytest

from repro.config import (
    EoAdcSpec,
    Technology,
    default_technology,
    photon_lifetime,
    ring_fsr,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def test_compute_ring_fsr_matches_paper(tech):
    """Paper Section IV-B: 9.36 nm FSR for the 7.5 um ring."""
    spec = tech.compute_ring_spec()
    fsr = ring_fsr(tech.wavelength, tech.waveguide.group_index, spec.circumference)
    assert fsr == pytest.approx(9.36e-9, rel=1e-3)


def test_resonance_order_is_integer_by_construction(tech):
    spec = tech.compute_ring_spec()
    order = tech.waveguide.effective_index * spec.circumference / tech.wavelength
    assert order == pytest.approx(88.0, abs=1e-3)


def test_adc_ring_is_critically_coupled(tech):
    spec = tech.adc_ring_spec()
    loss_db = spec.loss_db_per_cm * spec.circumference * 100.0
    amplitude = 10.0 ** (-loss_db / 20.0)
    assert spec.power_coupling_thru == pytest.approx(1.0 - amplitude**2)


def test_coupler_map_monotonic_in_gap(tech):
    gaps = [150e-9, 200e-9, 250e-9, 300e-9]
    couplings = [tech.coupler.power_coupling(g) for g in gaps]
    assert all(a > b for a, b in zip(couplings, couplings[1:]))


def test_coupler_map_hits_calibration_points(tech):
    assert tech.coupler.power_coupling(200e-9) == pytest.approx(0.046, rel=1e-3)
    adc = tech.adc_ring_spec()
    assert tech.coupler.power_coupling(250e-9) == pytest.approx(
        adc.power_coupling_thru, rel=2e-2
    )


def test_coupler_rejects_negative_gap(tech):
    with pytest.raises(ConfigurationError):
        tech.coupler.power_coupling(-1e-9)


def test_eoadc_reference_ladder_at_bin_centers(tech):
    refs = tech.eoadc.reference_voltages()
    assert len(refs) == 8
    assert refs[0] == pytest.approx(0.25)
    assert refs[-1] == pytest.approx(3.75)
    steps = [b - a for a, b in zip(refs, refs[1:])]
    assert all(step == pytest.approx(0.5) for step in steps)


def test_eoadc_power_arithmetic_matches_paper(tech):
    """(8*200 + 8*18) uW / 0.23 = 7.58 mW; +11 mW electrical; 2.32 pJ."""
    spec = tech.eoadc
    assert spec.optical_power_wall_plug == pytest.approx(7.58e-3, rel=1e-3)
    assert spec.total_power == pytest.approx(18.58e-3, rel=1e-3)
    assert spec.energy_per_conversion == pytest.approx(2.32e-12, rel=2e-3)


def test_eoadc_spec_rejects_bad_configs():
    with pytest.raises(ConfigurationError):
        EoAdcSpec(bits=0)
    with pytest.raises(ConfigurationError):
        EoAdcSpec(reference_power=300e-6, channel_power=200e-6)


def test_psram_energy_target(tech):
    assert tech.psram.switch_energy_target == pytest.approx(0.5e-12)


def test_tensor_ops_per_sample(tech):
    """16 rows x (16 mult + 16 acc) = 512 ops per ADC sample."""
    assert tech.tensor.ops_per_sample == 512
    assert tech.tensor.psram_cells == 768


def test_depletion_red_shift_sign(tech):
    """Paper Fig. 3(a): stronger reverse bias (more negative V_pn)
    red-shifts the resonance."""
    shift_reverse = tech.depletion.wavelength_shift(-2.0)
    shift_forward = tech.depletion.wavelength_shift(+2.0)
    assert shift_reverse > 0.0
    assert shift_forward < 0.0
    # Injection asymmetry: forward shifts slightly harder.
    assert abs(shift_forward) > abs(shift_reverse)


def test_injection_tuner_turn_on_and_saturation(tech):
    spec = tech.injection
    assert spec.wavelength_shift(0.0) == 0.0
    assert spec.wavelength_shift(0.5) == 0.0
    assert spec.wavelength_shift(1.8) == pytest.approx(-180e-12)
    assert spec.wavelength_shift(2.5) == pytest.approx(-180e-12)


def test_technology_replace_creates_copy(tech):
    modified = tech.replace(wavelength=1550e-9)
    assert modified.wavelength == 1550e-9
    assert tech.wavelength == pytest.approx(1310.5e-9)


def test_photon_lifetime_formula():
    lifetime = photon_lifetime(25000.0, 1310.5e-9)
    expected = 25000.0 * 1310.5e-9 / (2.0 * math.pi * 299792458.0)
    assert lifetime == pytest.approx(expected)
