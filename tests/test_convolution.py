"""Tests for im2col convolution on the photonic tensor core."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.ml.convolution import (
    PhotonicConv2d,
    avg_pool2d,
    im2col,
    im2col_channels,
    output_shape,
    sobel_kernels,
)


def im2col_loop(image, kernel_size, stride=1):
    """The original Python-window-loop im2col, kept as the reference
    the vectorized extraction must match value-for-value."""
    rows = (image.shape[0] - kernel_size) // stride + 1
    cols = (image.shape[1] - kernel_size) // stride + 1
    patches = np.empty((kernel_size * kernel_size, rows * cols))
    index = 0
    for r in range(rows):
        for c in range(cols):
            window = image[
                r * stride : r * stride + kernel_size,
                c * stride : c * stride + kernel_size,
            ]
            patches[:, index] = window.ravel()
            index += 1
    return patches


def test_im2col_shapes_and_contents():
    image = np.arange(16, dtype=float).reshape(4, 4)
    patches = im2col(image, kernel_size=3)
    assert patches.shape == (9, 4)
    # Top-left patch is the first column, row-major.
    np.testing.assert_array_equal(
        patches[:, 0], image[0:3, 0:3].ravel()
    )
    # Bottom-right patch is the last column.
    np.testing.assert_array_equal(
        patches[:, -1], image[1:4, 1:4].ravel()
    )


def test_im2col_stride():
    image = np.arange(25, dtype=float).reshape(5, 5)
    patches = im2col(image, kernel_size=3, stride=2)
    assert patches.shape == (9, 4)


@pytest.mark.parametrize("kernel_size, stride", [(1, 1), (2, 1), (3, 2), (4, 3)])
def test_vectorized_im2col_matches_loop(kernel_size, stride):
    rng = np.random.default_rng(11)
    image = rng.uniform(0.0, 1.0, (9, 7))
    np.testing.assert_array_equal(
        im2col(image, kernel_size, stride), im2col_loop(image, kernel_size, stride)
    )


def test_im2col_channels_stacks_channel_major():
    rng = np.random.default_rng(12)
    volume = rng.uniform(0.0, 1.0, (3, 5, 6))
    patches = im2col_channels(volume, kernel_size=2, stride=2)
    rows, cols = output_shape(volume.shape[1:], 2, stride=2)
    assert patches.shape == (3 * 4, rows * cols)
    # Column p is patch p's (channels, k, k) window, channel-major —
    # per-channel loop extraction stacked vertically.
    per_channel = np.vstack([im2col_loop(volume[ch], 2, 2) for ch in range(3)])
    np.testing.assert_array_equal(patches, per_channel)
    with pytest.raises(ConfigurationError):
        im2col_channels(volume[0], 2)


def test_im2col_validation():
    with pytest.raises(ConfigurationError):
        im2col(np.ones(4), 2)
    with pytest.raises(ConfigurationError):
        im2col(np.ones((4, 4)), 5)
    with pytest.raises(ConfigurationError):
        im2col(np.ones((4, 4)), 2, stride=0)


def test_output_shape():
    assert output_shape((8, 8), 3) == (6, 6)
    assert output_shape((8, 8), 3, stride=2) == (3, 3)
    with pytest.raises(ConfigurationError):
        output_shape((2, 2), 3)


def test_sobel_kernels_shape_and_antisymmetry():
    kernels = sobel_kernels()
    assert kernels.shape == (2, 3, 3)
    np.testing.assert_array_equal(kernels[0], kernels[1].T)
    assert kernels[0].sum() == 0.0  # zero-mean edge detector


@pytest.fixture(scope="module")
def conv_core(tech):
    return PhotonicTensorCore(
        rows=4, columns=9, weight_bits=3, adc_bits=6, technology=tech
    )


def test_photonic_conv_tracks_float_reference(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core, gain=2.0)
    rng = np.random.default_rng(3)
    image = rng.uniform(0.0, 1.0, (6, 6))
    photonic = conv.forward(image)
    reference = conv.forward_float(image)
    assert photonic.shape == reference.shape == (2, 4, 4)
    scale = np.abs(reference).max()
    assert np.max(np.abs(photonic - reference)) < 0.2 * scale


def test_float_reference_matches_manual_convolution(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    image = np.eye(5)
    reference = conv.forward_float(image)
    kernel = sobel_kernels()[0]
    manual = np.array(
        [
            [np.sum(image[r : r + 3, c : c + 3] * kernel) for c in range(3)]
            for r in range(3)
        ]
    )
    np.testing.assert_allclose(reference[0], manual)


def test_conv_rejects_negative_image(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    with pytest.raises(ConfigurationError):
        conv.forward(-np.ones((5, 5)))


def test_conv_validation(conv_core):
    with pytest.raises(ConfigurationError):
        PhotonicConv2d(np.ones((2, 3, 4)), conv_core)
    with pytest.raises(ConfigurationError):
        PhotonicConv2d(sobel_kernels(), conv_core, gain=0.0)
    conv = PhotonicConv2d(np.ones((2, 2, 3, 3)), conv_core)
    with pytest.raises(ConfigurationError, match=r"\(2, H, W\)"):
        conv.forward(np.ones((5, 5)))


@pytest.mark.parametrize(
    "seed, stride, adc_bits, channels, num_kernels",
    [
        (0, 1, None, 1, 2),
        (1, 2, 5, 1, 3),
        (2, 1, 6, 2, 3),
        (3, 3, 6, 1, 5),
    ],
)
def test_runtime_conv_matches_device_loop(tech, seed, stride, adc_bits, channels,
                                          num_kernels):
    """The compiled conv path must agree with the patch device loop
    code-for-code across randomized kernels, strides, channel counts
    and non-default ADC precision (exact estimates imply equal codes)."""
    rng = np.random.default_rng(seed)
    core = PhotonicTensorCore(
        rows=4, columns=9, weight_bits=3, adc_bits=adc_bits, technology=tech
    )
    kernels = rng.normal(0.0, 1.0, (num_kernels, channels, 3, 3))
    loop = PhotonicConv2d(kernels, core, stride=stride)
    fast = PhotonicConv2d(kernels, core, stride=stride, runtime=True)
    image = rng.uniform(0.0, 1.0, (channels, 8, 8))
    image[:, :3, :3] = 0.0  # an all-zero patch exercises peak-0 encoding
    loop_out = loop.forward(image)
    fast_out = fast.forward(image)
    assert loop_out.shape == fast_out.shape
    np.testing.assert_array_equal(fast_out, loop_out)


def test_forward_batch_matches_per_image_forward(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core, runtime=True)
    rng = np.random.default_rng(6)
    images = rng.uniform(0.0, 1.0, (3, 6, 6))
    batched = conv.forward_batch(images)
    assert batched.shape == (3, 2, 4, 4)
    for index, image in enumerate(images):
        np.testing.assert_array_equal(batched[index], conv.forward(image))
    with pytest.raises(ConfigurationError, match="3-D or 4-D"):
        conv.forward_batch(images[0])
    with pytest.raises(ConfigurationError, match="non-empty"):
        conv.forward_batch(np.empty((0, 6, 6)))


def test_non_negative_bank_skips_negative_pass(conv_core, monkeypatch):
    """An all-non-negative kernel bank must run only the positive
    differential array — one analog pass per patch, not two."""
    conv = PhotonicConv2d(np.abs(sobel_kernels()), conv_core)
    assert not np.any(conv.q_negative)
    assert conv.analog_passes == 1
    calls = []
    device_matvec = conv.tiler.matvec
    monkeypatch.setattr(
        conv.tiler, "matvec",
        lambda w, x, gain=1.0: calls.append(w is conv.q_negative)
        or device_matvec(w, x, gain=gain),
    )
    image = np.random.default_rng(7).uniform(0.0, 1.0, (5, 5))
    conv.forward(image)  # 9 patches
    assert len(calls) == 9 and not any(calls)

    signed = PhotonicConv2d(sobel_kernels(), conv_core)
    assert signed.analog_passes == 2


def test_patch_throughput_accounts_for_passes(conv_core, tech):
    # Signed sobel bank on a single tile: positive + negative pass.
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    assert conv.patch_throughput() == pytest.approx(8e9 / 2)
    # Non-negative bank: one pass, the full ADC rate.
    assert PhotonicConv2d(
        np.abs(sobel_kernels()), conv_core
    ).patch_throughput() == pytest.approx(8e9)


def test_patch_throughput_accounts_for_tiling(tech):
    """Regression: kernels wider or more numerous than one tile need
    multiple sequential passes per patch; the reported rate must drop
    by the tile-grid pass count instead of overstating throughput."""
    small = PhotonicTensorCore(rows=2, columns=4, weight_bits=3, technology=tech)
    conv = PhotonicConv2d(np.abs(sobel_kernels()), small, gain=1.0)
    # 9 taps on 4 columns -> 3 column tiles; 2 kernels fit the 2 rows.
    assert conv.analog_passes == 3
    assert conv.patch_throughput() == pytest.approx(8e9 / 3)
    signed = PhotonicConv2d(np.concatenate([sobel_kernels()] * 2), small)
    # 4 kernels on 2 rows -> 2 row tiles, x3 column tiles, x2 arrays.
    assert signed.analog_passes == 12
    assert signed.patch_throughput() == pytest.approx(8e9 / 12)


def test_conv_invalidate_runtime_recompiles(conv_core):
    """In-place quantized-array mutation plus invalidate_runtime must
    take effect on the compiled path, mirroring PhotonicDense."""
    conv = PhotonicConv2d(sobel_kernels(), conv_core, runtime=True)
    image = np.random.default_rng(9).uniform(0.0, 1.0, (5, 5))
    before = conv.forward(image)
    conv.q_positive[:] = 0
    conv.invalidate_runtime()
    assert conv._runtime_positive is None
    after = conv.forward(image)
    assert not np.array_equal(before, after)
    # Loop and runtime paths agree on the mutated program too.
    loop = PhotonicConv2d(sobel_kernels(), conv_core)
    loop.q_positive[:] = 0
    np.testing.assert_array_equal(after, loop.forward(image))


def test_avg_pool2d():
    maps = np.arange(16.0).reshape(4, 4)
    pooled = avg_pool2d(maps, 2)
    np.testing.assert_allclose(pooled, [[2.5, 4.5], [10.5, 12.5]])
    # Leading axes pass through; trailing remainder is cropped.
    stack = np.arange(2 * 5 * 5, dtype=float).reshape(2, 5, 5)
    assert avg_pool2d(stack, 2).shape == (2, 2, 2)
    with pytest.raises(ConfigurationError):
        avg_pool2d(maps, 0)
    with pytest.raises(ConfigurationError):
        avg_pool2d(maps, 5)
