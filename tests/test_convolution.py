"""Tests for im2col convolution on the photonic tensor core."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.ml.convolution import PhotonicConv2d, im2col, output_shape, sobel_kernels


def test_im2col_shapes_and_contents():
    image = np.arange(16, dtype=float).reshape(4, 4)
    patches = im2col(image, kernel_size=3)
    assert patches.shape == (9, 4)
    # Top-left patch is the first column, row-major.
    np.testing.assert_array_equal(
        patches[:, 0], image[0:3, 0:3].ravel()
    )
    # Bottom-right patch is the last column.
    np.testing.assert_array_equal(
        patches[:, -1], image[1:4, 1:4].ravel()
    )


def test_im2col_stride():
    image = np.arange(25, dtype=float).reshape(5, 5)
    patches = im2col(image, kernel_size=3, stride=2)
    assert patches.shape == (9, 4)


def test_im2col_validation():
    with pytest.raises(ConfigurationError):
        im2col(np.ones(4), 2)
    with pytest.raises(ConfigurationError):
        im2col(np.ones((4, 4)), 5)
    with pytest.raises(ConfigurationError):
        im2col(np.ones((4, 4)), 2, stride=0)


def test_output_shape():
    assert output_shape((8, 8), 3) == (6, 6)
    assert output_shape((8, 8), 3, stride=2) == (3, 3)
    with pytest.raises(ConfigurationError):
        output_shape((2, 2), 3)


def test_sobel_kernels_shape_and_antisymmetry():
    kernels = sobel_kernels()
    assert kernels.shape == (2, 3, 3)
    np.testing.assert_array_equal(kernels[0], kernels[1].T)
    assert kernels[0].sum() == 0.0  # zero-mean edge detector


@pytest.fixture(scope="module")
def conv_core(tech):
    return PhotonicTensorCore(
        rows=4, columns=9, weight_bits=3, adc_bits=6, technology=tech
    )


def test_photonic_conv_tracks_float_reference(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core, gain=2.0)
    rng = np.random.default_rng(3)
    image = rng.uniform(0.0, 1.0, (6, 6))
    photonic = conv.forward(image)
    reference = conv.forward_float(image)
    assert photonic.shape == reference.shape == (2, 4, 4)
    scale = np.abs(reference).max()
    assert np.max(np.abs(photonic - reference)) < 0.2 * scale


def test_float_reference_matches_manual_convolution(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    image = np.eye(5)
    reference = conv.forward_float(image)
    kernel = sobel_kernels()[0]
    manual = np.array(
        [
            [np.sum(image[r : r + 3, c : c + 3] * kernel) for c in range(3)]
            for r in range(3)
        ]
    )
    np.testing.assert_allclose(reference[0], manual)


def test_conv_rejects_negative_image(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    with pytest.raises(ConfigurationError):
        conv.forward(-np.ones((5, 5)))


def test_conv_validation(conv_core):
    with pytest.raises(ConfigurationError):
        PhotonicConv2d(np.ones((2, 3, 4)), conv_core)
    with pytest.raises(ConfigurationError):
        PhotonicConv2d(sobel_kernels(), conv_core, gain=0.0)


def test_patch_throughput_is_adc_bound(conv_core):
    conv = PhotonicConv2d(sobel_kernels(), conv_core)
    assert conv.patch_throughput() == pytest.approx(8e9)
