"""Smoke tests: the quick example scripts must run end to end.

Only the fast examples run here (the neural-inference and in-situ
scripts take tens of seconds and are exercised by their underlying
module tests instead).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    present = {path.name for path in EXAMPLES.glob("*.py")}
    expected = {
        "quickstart.py",
        "cluster_serving.py",
        "drift_recovery.py",
        "psram_memory_array.py",
        "adc_characterization.py",
        "neural_inference.py",
        "convolution_wdm.py",
        "cnn_inference.py",
        "insitu_training.py",
        "telemetry_tour.py",
        "traffic_slo.py",
        "elastic_fleet.py",
        "observability_incident.py",
    }
    assert expected <= present


@pytest.mark.parametrize(
    "name, markers",
    [
        ("quickstart.py", ["TOPS", "3.02"]),
        ("cluster_serving.py", ["routing cache_affinity", "shed", "replicas",
                                "imbalance"]),
        ("drift_recovery.py", ["code-error rate", "recalibrations",
                               "bit-for-bit healthy: True", "drained",
                               "restored"]),
        ("psram_memory_array.py", ["500", "GHz"]),
        ("adc_characterization.py", ["001", "2.32"]),
        ("telemetry_tour.py", ["p999", "end-to-end", "merged bin-for-bin",
                               "trace events", "Perfetto"]),
        ("traffic_slo.py", ["DeadlineExceededError", "SLO met",
                            "queue-wait", "capacity", "sustained"]),
        ("elastic_fleet.py", ["bit-for-bit: True", "scale-ups",
                              "parked [1, 2]", "16x16/a7"]),
        ("observability_incident.py", ["paged on the modelled clock",
                                       "severity page", "incident bundle",
                                       "trailing spans",
                                       "alert marked: True"]),
    ],
)
def test_fast_examples_run(name, markers):
    stdout = run_example(name)
    for marker in markers:
        assert marker in stdout, f"{name} output missing {marker!r}"
