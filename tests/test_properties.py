"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import default_technology
from repro.core.quantization import (
    dequantize_weights,
    encode_inputs,
    quantize_weights,
    signed_matmul_correction,
)
from repro.electronics.adc_metrics import differential_nonlinearity
from repro.electronics.elements import StorageNode
from repro.electronics.rom_decoder import CeilingPriorityRomDecoder, code_to_bits
from repro.photonics.coupler import BinaryScaledSplitterTree, PowerSplitter
from repro.photonics.mrr import AddDropMRR
from repro.photonics.signal import WDMSignal, merge_signals
from repro.sim.transient import FirstOrderLag

TECH = default_technology()
RING = AddDropMRR(
    TECH.compute_ring_spec(),
    design_wavelength=TECH.wavelength,
    waveguide=TECH.waveguide,
    coupler=TECH.coupler,
)


@given(
    detuning=st.floats(min_value=-5e-9, max_value=5e-9),
)
@settings(max_examples=200)
def test_ring_passivity(detuning):
    """For any wavelength, thru and drop powers are in [0, 1] and their
    sum never exceeds unity (no gain in a passive ring)."""
    wavelength = TECH.wavelength + detuning
    thru = float(RING.thru_transmission(wavelength))
    drop = float(RING.drop_transmission(wavelength))
    assert 0.0 <= thru <= 1.0
    assert 0.0 <= drop <= 1.0
    assert thru + drop <= 1.0 + 1e-12


@given(ratio=st.floats(min_value=0.0, max_value=1.0), power=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100)
def test_splitter_conserves_power(ratio, power):
    splitter = PowerSplitter(ratio=ratio)
    out1, out2 = splitter.split(WDMSignal.single(1310.5e-9, power))
    assert out1.total_power + out2.total_power == pytest.approx(power, rel=1e-12, abs=1e-18)


@given(bits=st.integers(min_value=1, max_value=10))
def test_splitter_tree_fractions_sum_to_one(bits):
    tree = BinaryScaledSplitterTree(bits)
    total = sum(tree.branch_fractions()) + tree.residual_fraction
    assert total == pytest.approx(1.0)


@given(
    powers=st.lists(st.floats(min_value=0.0, max_value=1e-3), min_size=1, max_size=6),
)
@settings(max_examples=100)
def test_merge_conserves_total_power(powers):
    signals = [WDMSignal.single(1310e-9 + i * 1e-9, p) for i, p in enumerate(powers)]
    merged = merge_signals(signals)
    assert merged.total_power == pytest.approx(sum(powers), abs=1e-18)


@given(bits=st.integers(min_value=1, max_value=6), data=st.data())
def test_decoder_one_hot_identity(bits, data):
    decoder = CeilingPriorityRomDecoder(bits)
    code = data.draw(st.integers(min_value=0, max_value=2**bits - 1))
    activations = [False] * 2**bits
    activations[code] = True
    assert decoder.decode(activations) == code


@given(bits=st.integers(min_value=2, max_value=6), data=st.data())
def test_decoder_adjacent_two_hot_ceiling(bits, data):
    decoder = CeilingPriorityRomDecoder(bits)
    lower = data.draw(st.integers(min_value=0, max_value=2**bits - 2))
    activations = [False] * 2**bits
    activations[lower] = activations[lower + 1] = True
    assert decoder.decode(activations) == lower + 1


@given(bits=st.integers(min_value=1, max_value=8), data=st.data())
def test_code_to_bits_round_trip(bits, data):
    code = data.draw(st.integers(min_value=0, max_value=2**bits - 1))
    expansion = code_to_bits(code, bits)
    value = 0
    for bit in expansion:
        value = (value << 1) | bit
    assert value == code


@given(
    weights=st.lists(
        st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=1, max_size=16
    ),
    bits=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=150)
def test_signed_quantization_error_bounded(weights, bits):
    weights = np.asarray(weights)
    q, scale = quantize_weights(weights, bits, signed=True)
    restored = dequantize_weights(q, scale, bits, signed=True)
    assert np.all(np.abs(restored - weights) <= scale / 2 + 1e-9)
    assert np.all(q >= 0) and np.all(q < 2**bits)


@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=16
    )
)
@settings(max_examples=100)
def test_encode_inputs_bounds_and_recovery(values):
    values = np.asarray(values)
    encoded, scale = encode_inputs(values)
    assert np.all(encoded >= 0.0) and np.all(encoded <= 1.0)
    assert np.allclose(encoded * scale, values, atol=1e-9)


@given(
    bits=st.integers(min_value=2, max_value=5),
    data=st.data(),
)
@settings(max_examples=100)
def test_signed_correction_identity(bits, data):
    """Offset-binary correction is exact in integer arithmetic."""
    size = data.draw(st.integers(min_value=1, max_value=8))
    offset = 2 ** (bits - 1)
    signed = data.draw(
        st.lists(
            st.integers(min_value=-offset, max_value=offset - 1),
            min_size=size,
            max_size=size,
        )
    )
    x = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    signed = np.asarray(signed)
    x = np.asarray(x)
    unsigned = (signed + offset) @ x
    assert signed_matmul_correction(unsigned, x, bits) == pytest.approx(signed @ x)


@given(
    currents=st.lists(
        st.floats(min_value=-1e-3, max_value=1e-3, allow_nan=False),
        min_size=1,
        max_size=50,
    )
)
@settings(max_examples=100)
def test_storage_node_never_leaves_rails(currents):
    node = StorageNode(5e-15, 1.8, 0.9)
    for current in currents:
        node.integrate(current, 1e-12)
        assert 0.0 <= node.voltage <= 1.8


@given(
    target=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
    steps=st.integers(min_value=1, max_value=50),
)
@settings(max_examples=100)
def test_first_order_lag_contracts_toward_target(target, steps):
    lag = FirstOrderLag(0.0, time_constant=1e-12)
    previous_distance = abs(target - 0.0)
    for _ in range(steps):
        lag.step(target, 1e-12)
        distance = abs(target - float(lag.state))
        assert distance <= previous_distance + 1e-12
        previous_distance = distance


@given(
    edges=st.lists(
        st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
        min_size=3,
        max_size=3,
        unique=True,
    )
)
@settings(max_examples=100)
def test_dnl_sums_to_span_error(edges):
    """Sum of DNL equals (last-first transition)/LSB - (levels-2) by
    construction; with ideal first/last edges it is ~0."""
    transitions = {k + 1: v for k, v in enumerate(sorted(edges))}
    lsb = (max(edges) - min(edges)) / 2.0
    dnl = differential_nonlinearity(transitions, lsb, levels=4)
    assert dnl.sum() == pytest.approx(
        (max(edges) - min(edges)) / lsb - 2.0, abs=1e-9
    )
