"""Unit tests for couplers, splitters and the binary-scaled tree."""

import pytest

from repro.errors import ConfigurationError
from repro.photonics.coupler import (
    BinaryScaledSplitterTree,
    DirectionalCoupler,
    PowerSplitter,
)
from repro.photonics.signal import WDMSignal


def test_directional_coupler_conserves_power():
    coupler = DirectionalCoupler(power_coupling=0.3)
    outputs = coupler.propagate_ports({"in1": WDMSignal.single(1310e-9, 1e-3)})
    total = outputs["out1"].total_power + outputs["out2"].total_power
    assert total == pytest.approx(1e-3)
    assert outputs["out2"].total_power == pytest.approx(0.3e-3)


def test_directional_coupler_from_gap_uses_map():
    coupler = DirectionalCoupler(gap=200e-9)
    assert coupler.power_coupling == pytest.approx(0.046, rel=1e-3)
    assert coupler.field_self_coupling**2 + coupler.field_cross_coupling**2 == pytest.approx(1.0)


def test_directional_coupler_requires_gap_or_coupling():
    with pytest.raises(ConfigurationError):
        DirectionalCoupler()


def test_directional_coupler_two_inputs_superpose():
    coupler = DirectionalCoupler(power_coupling=0.5)
    outputs = coupler.propagate_ports(
        {
            "in1": WDMSignal.single(1310e-9, 1e-3),
            "in2": WDMSignal.single(1310e-9, 1e-3),
        }
    )
    assert outputs["out1"].total_power == pytest.approx(1e-3)
    assert outputs["out2"].total_power == pytest.approx(1e-3)


def test_power_splitter_ratio_and_loss():
    splitter = PowerSplitter(ratio=0.25, excess_loss_db=0.1)
    out1, out2 = splitter.split(WDMSignal.single(1310e-9, 1e-3))
    survive = 10 ** (-0.01)
    assert out1.total_power == pytest.approx(0.25e-3 * survive)
    assert out2.total_power == pytest.approx(0.75e-3 * survive)


def test_power_splitter_rejects_bad_ratio():
    with pytest.raises(ConfigurationError):
        PowerSplitter(ratio=1.5)
    with pytest.raises(ConfigurationError):
        PowerSplitter(excess_loss_db=-1.0)


def test_binary_tree_fractions_are_exact_powers_of_two():
    tree = BinaryScaledSplitterTree(bits=3)
    assert tree.branch_fractions() == [0.5, 0.25, 0.125]
    assert tree.residual_fraction == 0.125


def test_binary_tree_split_conserves_power():
    tree = BinaryScaledSplitterTree(bits=4)
    branches, residual = tree.split(WDMSignal.single(1310e-9, 1e-3))
    total = sum(branch.total_power for branch in branches) + residual.total_power
    assert total == pytest.approx(1e-3)
    assert branches[0].total_power == pytest.approx(0.5e-3)
    assert residual.total_power == pytest.approx(1e-3 / 16)


def test_binary_tree_needs_positive_bits():
    with pytest.raises(ConfigurationError):
        BinaryScaledSplitterTree(bits=0)


def test_binary_tree_msb_ordering_matches_weight_significance():
    """Branch k carries fraction 2^-(k+1): MSB first, so equal-gain PD
    summation reconstructs IN * w / 2^n (paper Fig. 2)."""
    tree = BinaryScaledSplitterTree(bits=3)
    branches, _ = tree.split(WDMSignal.single(1310e-9, 8e-3))
    weights = [4, 2, 1]  # bit significances for 3 bits, MSB first
    reconstructed = sum(
        branch.total_power * (bit_weight > 0)
        for branch, bit_weight in zip(branches, weights)
    )
    # All bits set: IN * 7/8.
    assert reconstructed == pytest.approx(8e-3 * 7 / 8)
