"""Tests for ``repro.lint`` — the AST-based contract checker.

Three layers:

* **Fixture corpus** — every rule runs against one firing and one
  clean snippet under ``tests/lint_fixtures/`` (loaded as text, never
  imported), pinning exactly which shapes fire and which are
  sanctioned.
* **Machinery** — suppressions (valid / malformed / stale), the
  baseline round-trip, the runner over a throwaway tree, and the
  ``python -m repro lint`` CLI surface.
* **Acceptance + regressions** — the repo itself lints clean, and the
  violations the rules originally surfaced (host-clock reads in
  serving/session, unguarded flush telemetry, bare ``ValueError`` in
  constants) stay fixed.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.errors import ConfigurationError, ReproError, UnitConversionError
from repro.lint import (
    BASELINE_FILE,
    RULES,
    ModuleUnderLint,
    Severity,
    all_rules,
    load_baseline,
    run_lint,
    scan_suppressions,
    write_baseline,
)
from repro.lint.runner import PARSE_ERROR, UNUSED_SUPPRESSION, discover_files
from repro.lint.suppressions import SUPPRESSION_SYNTAX

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

EXPECTED_RULES = (
    "hot-path-telemetry-guard",
    "no-unseeded-rng",
    "modelled-clock-purity",
    "mutate-must-invalidate",
    "report-accounting-completeness",
    "error-taxonomy",
    "unused-import",
)

#: rule name -> (fixture stem, fake relpath inside the rule's scope,
#: line numbers the firing fixture must produce).
FIXTURE_TABLE = {
    "hot-path-telemetry-guard": (
        "telemetry_guard",
        "src/repro/runtime/fixture_mod.py",
        [10, 13, 18, 23],
    ),
    "no-unseeded-rng": ("unseeded_rng", "src/repro/fixture_mod.py", [10, 11, 12, 13]),
    "modelled-clock-purity": (
        "clock_purity",
        "src/repro/fixture_mod.py",
        [9, 10, 11, 12],
    ),
    "mutate-must-invalidate": (
        "mutate_invalidate",
        "src/repro/fixture_mod.py",
        [15, 18, 30],
    ),
    "report-accounting-completeness": (
        "report_accounting",
        "src/repro/fixture_mod.py",
        [10, 24],
    ),
    "error-taxonomy": ("error_taxonomy", "src/repro/fixture_mod.py", [6, 8, 10]),
    "unused-import": ("unused_import", "src/repro/fixture_mod.py", [3, 5, 6]),
}


def _module(relpath: str, source: str) -> ModuleUnderLint:
    return ModuleUnderLint(
        relpath=relpath,
        dotted=relpath.removeprefix("src/").removesuffix(".py").replace("/", "."),
        source=source,
        tree=ast.parse(source),
    )


def _run_rule(rule_name: str, relpath: str, source: str):
    all_rules()  # ensure the rule modules are imported/registered
    rule = RULES[rule_name]
    module = _module(relpath, source)
    assert rule.applies_to(module), f"{rule_name} should apply to {relpath}"
    return rule.check(module)


# --------------------------------------------------------------------------
# fixture corpus: one firing and one clean snippet per rule
# --------------------------------------------------------------------------


@pytest.mark.parametrize("rule_name", sorted(FIXTURE_TABLE))
def test_rule_fires_on_fixture(rule_name):
    stem, relpath, expected_lines = FIXTURE_TABLE[rule_name]
    source = (FIXTURES / f"{stem}_firing.py").read_text()
    findings = _run_rule(rule_name, relpath, source)
    assert sorted(f.line for f in findings) == expected_lines
    assert all(f.rule == rule_name for f in findings)
    assert all(f.path == relpath for f in findings)


@pytest.mark.parametrize("rule_name", sorted(FIXTURE_TABLE))
def test_rule_quiet_on_clean_fixture(rule_name):
    stem, relpath, _ = FIXTURE_TABLE[rule_name]
    source = (FIXTURES / f"{stem}_clean.py").read_text()
    findings = _run_rule(rule_name, relpath, source)
    assert findings == [], [f.render() for f in findings]


def test_registry_has_exactly_the_documented_rules():
    names = tuple(rule.name for rule in all_rules())
    assert sorted(names) == sorted(EXPECTED_RULES)
    for rule in all_rules():
        assert rule.contract and rule.rationale


def test_rule_scoping():
    all_rules()
    out_of_scope = _module("src/repro/core/tensor_core.py", "x = 1\n")
    assert not RULES["hot-path-telemetry-guard"].applies_to(out_of_scope)
    traffic = _module("src/repro/traffic/engine.py", "x = 1\n")
    assert RULES["hot-path-telemetry-guard"].applies_to(traffic)
    profiling = _module("src/repro/telemetry/profiling.py", "x = 1\n")
    assert not RULES["modelled-clock-purity"].applies_to(profiling)
    package_init = _module("src/repro/api/__init__.py", "x = 1\n")
    assert not RULES["unused-import"].applies_to(package_init)
    outside_tree = _module("tests/test_something.py", "x = 1\n")
    assert not RULES["error-taxonomy"].applies_to(outside_tree)
    # ... but the determinism rules see everything they are pointed at.
    assert RULES["no-unseeded-rng"].applies_to(outside_tree)


def test_findings_render_and_roundtrip():
    source = (FIXTURES / "error_taxonomy_firing.py").read_text()
    finding = _run_rule("error-taxonomy", "src/repro/fixture_mod.py", source)[0]
    assert finding.render().startswith("src/repro/fixture_mod.py:6:9: error")
    assert "[error-taxonomy]" in finding.render()
    assert finding.key == f"error-taxonomy::src/repro/fixture_mod.py::{finding.message}"
    payload = finding.to_dict()
    assert payload["rule"] == "error-taxonomy"
    assert payload["severity"] == "error"
    assert payload["line"] == 6


# --------------------------------------------------------------------------
# suppressions
# --------------------------------------------------------------------------

_MARKER_COMMENT = "# repro-lint: disable={rules} -- {reason}"


def test_valid_suppression_covers_and_marks_used():
    line = "x = 1  " + _MARKER_COMMENT.format(
        rules="no-unseeded-rng,error-taxonomy", reason="fixture reason"
    )
    scanned = scan_suppressions("src/repro/x.py", line + "\n")
    assert scanned.syntax_findings == []
    marker = scanned.by_line[1]
    assert marker.rules == ("no-unseeded-rng", "error-taxonomy")
    assert marker.reason == "fixture reason"
    assert not marker.used
    assert scanned.covers(1, "error-taxonomy")
    assert marker.used
    assert not scanned.covers(1, "unused-import")
    assert not scanned.covers(2, "error-taxonomy")


def test_suppression_without_reason_is_a_syntax_finding():
    scanned = scan_suppressions(
        "src/repro/x.py", "x = 1  # repro-lint: disable=no-unseeded-rng\n"
    )
    assert scanned.by_line == {}
    (finding,) = scanned.syntax_findings
    assert finding.rule == SUPPRESSION_SYNTAX
    assert finding.severity == Severity.ERROR
    assert "reason" in finding.message


def test_malformed_marker_is_a_syntax_finding():
    scanned = scan_suppressions("src/repro/x.py", "x = 1  # repro-lint: enable=foo\n")
    (finding,) = scanned.syntax_findings
    assert finding.rule == SUPPRESSION_SYNTAX
    assert "malformed" in finding.message


def test_docstring_describing_the_marker_does_not_activate():
    source = '"""Use repro-lint: disable=no-unseeded-rng -- like this."""\nx = 1\n'
    scanned = scan_suppressions("src/repro/x.py", source)
    assert scanned.by_line == {}
    assert scanned.syntax_findings == []


# --------------------------------------------------------------------------
# runner end-to-end over a throwaway tree
# --------------------------------------------------------------------------

_VIOLATING = "import numpy as np\n\n\ndef draw():\n    return np.random.rand(4)\n"
_CLEAN = (
    "import numpy as np\n\n\ndef draw(seed):\n"
    "    return np.random.default_rng(seed).normal(0.0, 1.0, 4)\n"
)


def _tmp_repo(tmp_path: Path, source: str) -> Path:
    module = tmp_path / "src" / "pkg" / "mod.py"
    module.parent.mkdir(parents=True)
    module.write_text(source)
    return tmp_path


def test_run_lint_finds_violation(tmp_path):
    root = _tmp_repo(tmp_path, _VIOLATING)
    run = run_lint(root)
    assert run.failed
    assert run.files_checked == 1
    (finding,) = run.findings
    assert finding.rule == "no-unseeded-rng"
    assert finding.path == "src/pkg/mod.py"
    assert "-> 1 finding" in run.render()


def test_run_lint_clean_tree(tmp_path):
    root = _tmp_repo(tmp_path, _CLEAN)
    run = run_lint(root)
    assert not run.failed
    assert run.findings == []
    assert "-> 0 findings" in run.render()


def test_inline_suppression_silences_and_stale_marker_warns(tmp_path):
    suppressed = _VIOLATING.replace(
        "np.random.rand(4)",
        "np.random.rand(4)  # repro-lint: disable=no-unseeded-rng -- fixture",
    )
    run = run_lint(_tmp_repo(tmp_path, suppressed))
    assert run.findings == [] and not run.failed

    stale = _CLEAN.replace(
        "normal(0.0, 1.0, 4)",
        "normal(0.0, 1.0, 4)  # repro-lint: disable=no-unseeded-rng -- fixture",
    )
    run = run_lint(_tmp_repo(tmp_path / "stale", stale))
    (finding,) = run.findings
    assert finding.rule == UNUSED_SUPPRESSION
    assert finding.severity == Severity.WARNING
    assert run.failed  # stale exemptions fail the run too


def test_baseline_roundtrip_grandfathers_findings(tmp_path):
    root = _tmp_repo(tmp_path, _VIOLATING)
    baseline = root / BASELINE_FILE
    first = run_lint(root, baseline_path=baseline)
    assert first.failed
    assert write_baseline(baseline, first) == 1
    assert load_baseline(baseline) == {first.findings[0].key}
    second = run_lint(root, baseline_path=baseline)
    assert not second.failed
    assert second.findings == []
    assert [f.key for f in second.baselined] == [first.findings[0].key]
    assert "(baselined)" in second.render()


def test_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_baseline(bad)


def test_unparseable_file_is_a_parse_error_finding(tmp_path):
    root = _tmp_repo(tmp_path, "def broken(:\n")
    run = run_lint(root)
    (finding,) = run.findings
    assert finding.rule == PARSE_ERROR
    assert run.failed


def test_discover_files_explicit_paths(tmp_path):
    root = _tmp_repo(tmp_path, _CLEAN)
    assert discover_files(root) == [root / "src" / "pkg" / "mod.py"]
    assert discover_files(root, ["src/pkg/mod.py"]) == [root / "src" / "pkg" / "mod.py"]
    assert discover_files(root, ["src"]) == [root / "src" / "pkg" / "mod.py"]
    with pytest.raises(ConfigurationError):
        discover_files(root, ["no/such/file.py"])


# --------------------------------------------------------------------------
# CLI surface
# --------------------------------------------------------------------------


def test_cli_lint_reports_and_fails(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(_tmp_repo(tmp_path, _VIOLATING))
    assert main(["lint"]) == 1
    out = capsys.readouterr().out
    assert "no-unseeded-rng" in out and "-> 1 finding" in out


def test_cli_lint_json_format(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(_tmp_repo(tmp_path, _VIOLATING))
    assert main(["lint", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["failed"] is True
    assert payload["counts_by_rule"] == {"no-unseeded-rng": 1}
    assert payload["findings"][0]["path"] == "src/pkg/mod.py"


def test_cli_write_baseline_then_passes(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(_tmp_repo(tmp_path, _VIOLATING))
    assert main(["lint", "--write-baseline"]) == 0
    assert "baseline written" in capsys.readouterr().out
    assert (tmp_path / BASELINE_FILE).exists()
    assert main(["lint"]) == 0
    assert "(baselined)" in capsys.readouterr().out


def test_cli_catalog_lists_every_rule(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "--catalog"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_RULES:
        assert name in out


def test_cli_usage_errors(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(_tmp_repo(tmp_path, _CLEAN))
    assert main(["lint", "--format", "yaml"]) == 2
    assert main(["lint", "--no-such-flag"]) == 2
    assert main(["lint", "no/such/file.py"]) == 2
    capsys.readouterr()


# --------------------------------------------------------------------------
# acceptance: the repo itself is lint-clean
# --------------------------------------------------------------------------


def test_repo_is_lint_clean(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint"]) == 0
    assert "-> 0 findings" in capsys.readouterr().out


# --------------------------------------------------------------------------
# regressions for the violations the rules originally surfaced
# --------------------------------------------------------------------------


def test_previously_violating_modules_stay_clean():
    # serving.py / session.py read the host clock directly and session
    # used telemetry unguarded; constants.py raised bare ValueError.
    run = run_lint(
        REPO_ROOT,
        paths=[
            "src/repro/runtime/serving.py",
            "src/repro/api/session.py",
            "src/repro/constants.py",
        ],
    )
    assert run.findings == [], [f.render() for f in run.findings]


def test_wall_clock_is_the_sanctioned_host_clock():
    from repro.telemetry import wall_clock

    first, second = wall_clock(), wall_clock()
    assert isinstance(first, float)
    assert second >= first


def test_unit_conversion_error_stays_in_both_hierarchies():
    from repro.constants import watts_to_dbm

    with pytest.raises(UnitConversionError):
        watts_to_dbm(0.0)
    with pytest.raises(ValueError):  # pre-taxonomy callers keep working
        watts_to_dbm(-1.0)
    assert issubclass(UnitConversionError, ReproError)


def test_flush_telemetry_is_a_noop_without_a_binding():
    from repro.api.session import PhotonicSession

    class _Uninstrumented:
        telemetry = None

    # With telemetry=None both paths must return before touching the
    # future/report arguments at all — that is the zero-overhead deal.
    PhotonicSession._note_resolved(_Uninstrumented(), None, None)
    PhotonicSession._emit_flush_telemetry(_Uninstrumented(), None, [])
