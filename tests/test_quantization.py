"""Tests for weight/input quantization and signed-arithmetic recovery."""

import numpy as np
import pytest

from repro.core.quantization import (
    decode_output,
    dequantize_weights,
    encode_inputs,
    quantize_weights,
    signed_matmul_correction,
)
from repro.errors import ConfigurationError


def test_unsigned_quantization_round_trip():
    weights = np.array([0.0, 0.5, 1.0, 3.5])
    q, scale = quantize_weights(weights, bits=3)
    assert q.max() == 7
    restored = dequantize_weights(q, scale, bits=3)
    assert np.all(np.abs(restored - weights) <= scale / 2 + 1e-12)


def test_unsigned_rejects_negative_weights():
    with pytest.raises(ConfigurationError):
        quantize_weights(np.array([-1.0, 1.0]), bits=3)


def test_signed_offset_binary_round_trip():
    weights = np.array([-1.5, -0.3, 0.0, 0.9, 1.5])
    q, scale = quantize_weights(weights, bits=3, signed=True)
    assert np.all(q >= 0) and np.all(q <= 7)
    restored = dequantize_weights(q, scale, bits=3, signed=True)
    assert np.all(np.abs(restored - weights) <= scale / 2 + 1e-12)


def test_signed_zero_maps_to_offset():
    q, _ = quantize_weights(np.array([0.0]), bits=3, signed=True)
    assert q[0] == 4  # 2^(bits-1)


def test_signed_correction_recovers_signed_dot_product():
    """q = w + 4 (3-bit offset binary): subtracting 4*sum(x) from the
    unsigned product recovers the signed product exactly."""
    rng = np.random.default_rng(8)
    signed_weights = rng.integers(-4, 4, size=(3, 6))
    offset_weights = signed_weights + 4
    x = rng.uniform(0.0, 1.0, 6)
    unsigned = offset_weights @ x
    corrected = signed_matmul_correction(unsigned, x, bits=3)
    assert np.allclose(corrected, signed_weights @ x)


def test_encode_inputs_scale_recovery():
    values = np.array([0.0, 2.0, 8.0])
    encoded, scale = encode_inputs(values)
    assert encoded.max() == pytest.approx(1.0)
    assert np.allclose(encoded * scale, values)


def test_encode_inputs_all_zero():
    encoded, scale = encode_inputs(np.zeros(4))
    assert np.all(encoded == 0.0)
    assert scale == 1.0


def test_encode_inputs_rejects_negative():
    with pytest.raises(ConfigurationError):
        encode_inputs(np.array([-1.0, 1.0]))


def test_decode_output_undoes_scales():
    estimates = np.array([1.0, 2.0])
    assert np.allclose(decode_output(estimates, 2.0, 0.5), [1.0, 2.0])


def test_zero_magnitude_weights():
    q, scale = quantize_weights(np.zeros(3), bits=3)
    assert np.all(q == 0) and scale == 1.0


def test_bits_validation():
    with pytest.raises(ConfigurationError):
        quantize_weights(np.ones(2), bits=0)
    with pytest.raises(ConfigurationError):
        dequantize_weights(np.ones(2), 1.0, bits=0)
    with pytest.raises(ConfigurationError):
        signed_matmul_correction(np.ones(2), np.ones(2), bits=0)
