"""Unit tests for the transient engine and first-order lag."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.transient import FirstOrderLag, Recorder, TransientEngine


def test_lag_converges_exponentially():
    lag = FirstOrderLag(0.0, time_constant=1e-12)
    lag.step(1.0, 1e-12)
    assert float(lag.state) == pytest.approx(1.0 - math.exp(-1.0))


def test_lag_vector_state():
    lag = FirstOrderLag(np.zeros(3), time_constant=1e-12)
    lag.step(np.array([1.0, 2.0, 3.0]), 10e-12)
    assert np.allclose(lag.state, [1.0, 2.0, 3.0], atol=1e-3)


def test_lag_snap_resets_state():
    lag = FirstOrderLag(0.0, 1e-12)
    lag.snap(5.0)
    assert float(lag.state) == 5.0


def test_lag_validation():
    with pytest.raises(ConfigurationError):
        FirstOrderLag(0.0, 0.0)
    lag = FirstOrderLag(0.0, 1e-12)
    with pytest.raises(SimulationError):
        lag.step(1.0, 0.0)


def test_recorder_collects_waveforms():
    recorder = Recorder()
    for step in range(5):
        recorder.record(step * 1e-12, a=float(step), b=float(-step))
    assert len(recorder) == 5
    assert recorder.signal_names == ["a", "b"]
    assert recorder.waveform("a").final_value() == 4.0


def test_recorder_missing_signal_raises():
    recorder = Recorder()
    recorder.record(0.0, a=1.0)
    with pytest.raises(SimulationError):
        recorder.record(1.0, b=2.0)


def test_recorder_unknown_waveform():
    recorder = Recorder()
    recorder.record(0.0, a=1.0)
    with pytest.raises(SimulationError):
        recorder.waveform("missing")


def test_engine_runs_expected_step_count():
    engine = TransientEngine(time_step=1e-12, duration=100e-12)
    assert engine.step_count == 100
    recorder = engine.run(lambda t, dt: {"t": t})
    assert len(recorder) == 100


def test_engine_integrates_simple_ode():
    """dv/dt = -v/tau integrated with the engine matches the analytic
    solution to first order."""
    tau = 10e-12
    state = {"v": 1.0}

    def step(t, dt):
        state["v"] += -state["v"] / tau * dt
        return {"v": state["v"]}

    engine = TransientEngine(time_step=0.01e-12, duration=10e-12)
    recorder = engine.run(step)
    assert recorder.waveform("v").final_value() == pytest.approx(math.exp(-1.0), rel=1e-2)


def test_engine_validates_configuration():
    with pytest.raises(ConfigurationError):
        TransientEngine(time_step=0.0, duration=1.0)
    with pytest.raises(ConfigurationError):
        TransientEngine(time_step=1.0, duration=0.5)


def test_engine_requires_dict_signals():
    engine = TransientEngine(time_step=1e-12, duration=3e-12)
    with pytest.raises(SimulationError):
        engine.run(lambda t, dt: 1.0)
