"""Unit tests for the TIA and amplifier chain models."""

import pytest

from repro.electronics.amplifier import AmplifierChain, VoltageAmplifier
from repro.electronics.tia import Tia
from repro.errors import ConfigurationError


def test_tia_output_linear_then_clamped():
    tia = Tia(transimpedance=20e3, bandwidth=12e9, supply_voltage=1.8, power=0.5e-3)
    assert tia.output_voltage(10e-6) == pytest.approx(0.2)
    assert tia.output_voltage(1e-3) == 1.8  # clamped
    assert tia.output_voltage(-1e-6) == 0.0  # clamped at ground


def test_tia_full_scale_current():
    tia = Tia(transimpedance=20e3, bandwidth=12e9, supply_voltage=1.8, power=0.5e-3)
    assert tia.full_scale_current() == pytest.approx(1.8 / 20e3)


def test_tia_time_constant_from_bandwidth():
    tia = Tia.inverter_based_eoadc()
    assert tia.time_constant == pytest.approx(1.0 / (2 * 3.14159265 * tia.bandwidth), rel=1e-6)


def test_eoadc_preset_power_budget():
    """Per-channel TIA + amps must sum to the calibrated 0.7975 mW so
    8 channels + decoder land on the paper's 11 mW."""
    tia = Tia.inverter_based_eoadc()
    chain = AmplifierChain.eoadc_chain()
    assert tia.power + chain.power == pytest.approx(0.7975e-3, rel=1e-6)


def test_row_tia_preset_matches_ref52_class():
    tia = Tia.row_tia_28nm()
    assert tia.power == pytest.approx(42e-3)
    assert tia.bandwidth == pytest.approx(42e9)


def test_tia_energy():
    tia = Tia.row_tia_28nm()
    assert tia.energy(1e-9) == pytest.approx(42e-12)
    with pytest.raises(ConfigurationError):
        tia.energy(-1.0)


def test_tia_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        Tia(transimpedance=0.0, bandwidth=1e9, supply_voltage=1.8, power=1e-3)
    with pytest.raises(ConfigurationError):
        Tia(transimpedance=1e3, bandwidth=1e9, supply_voltage=1.8, power=-1e-3)


def test_amplifier_gain_about_reference():
    amp = VoltageAmplifier(gain=8.0, supply_voltage=1.8)
    assert amp.amplify(0.95, reference=0.9) == pytest.approx(0.9 + 8 * 0.05)


def test_amplifier_clamps_to_rails():
    amp = VoltageAmplifier(gain=100.0, supply_voltage=1.8)
    assert amp.amplify(1.0, reference=0.9) == 1.8
    assert amp.amplify(0.8, reference=0.9) == 0.0


def test_chain_total_gain_and_regeneration():
    chain = AmplifierChain.eoadc_chain(stage_gain=8.0, stage_count=2)
    assert chain.total_gain == pytest.approx(64.0)
    # A 30 mV offset from the trip point regenerates past the rails.
    assert chain.amplify(0.9 + 0.03, reference=0.9) == 1.8
    assert chain.amplify(0.9 - 0.03, reference=0.9) == 0.0


def test_chain_requires_stages():
    with pytest.raises(ConfigurationError):
        AmplifierChain([])
