"""Unit tests for sweep helpers and the Monte-Carlo engine."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.montecarlo import MonteCarlo, SummaryStatistics
from repro.sim.sweep import sweep_1d, sweep_2d, wavelength_grid


def test_sweep_1d_scalar_results():
    results = sweep_1d(lambda x: x**2, [1.0, 2.0, 3.0])
    assert np.allclose(results, [1.0, 4.0, 9.0])


def test_sweep_1d_array_results_stack():
    results = sweep_1d(lambda x: np.array([x, -x]), [1.0, 2.0])
    assert results.shape == (2, 2)


def test_sweep_1d_rejects_empty():
    with pytest.raises(ConfigurationError):
        sweep_1d(lambda x: x, [])


def test_sweep_2d_grid_shape_and_values():
    grid = sweep_2d(lambda a, b: a * 10 + b, [1.0, 2.0], [0.1, 0.2, 0.3])
    assert grid.shape == (2, 3)
    assert grid[1, 2] == pytest.approx(20.3)


def test_wavelength_grid_symmetric():
    grid = wavelength_grid(1310.5e-9, 1e-9, points=11)
    assert grid[0] == pytest.approx(1309.5e-9)
    assert grid[-1] == pytest.approx(1311.5e-9)
    assert grid[5] == pytest.approx(1310.5e-9)


def test_wavelength_grid_validation():
    with pytest.raises(ConfigurationError):
        wavelength_grid(1310e-9, 0.0)
    with pytest.raises(ConfigurationError):
        wavelength_grid(1310e-9, 1e-9, points=2)


def test_monte_carlo_reproducible():
    first = MonteCarlo(seed=7).run(lambda rng: rng.normal(), trials=10)
    second = MonteCarlo(seed=7).run(lambda rng: rng.normal(), trials=10)
    assert first == second


def test_monte_carlo_trials_independent():
    samples = MonteCarlo(seed=7).run(lambda rng: rng.normal(), trials=50)
    assert len(set(samples)) == 50


def test_yield_fraction():
    mc = MonteCarlo()
    assert mc.yield_fraction([1.0, 2.0, 3.0, 4.0], lambda x: x <= 2.0) == 0.5
    with pytest.raises(ConfigurationError):
        mc.yield_fraction([], lambda x: True)


def test_confidence_interval_bounds():
    mc = MonteCarlo()
    low, high = mc.confidence_interval_95(0.9, trials=100)
    assert 0.0 <= low < 0.9 < high <= 1.0
    assert mc.confidence_interval_95(1.0, trials=10) == (1.0, 1.0)


def test_summary_statistics():
    stats = SummaryStatistics.from_samples([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.count == 5
    assert stats.mean == pytest.approx(3.0)
    assert stats.minimum == 1.0 and stats.maximum == 5.0
    assert stats.percentile_5 < stats.percentile_95
    with pytest.raises(ConfigurationError):
        SummaryStatistics.from_samples([])


def test_normal_rejects_negative_sigma():
    with pytest.raises(ConfigurationError):
        MonteCarlo().normal(-1.0)


def test_montecarlo_same_seed_runners_replay_identically():
    def measure(rng):
        return float(rng.normal() + rng.uniform())

    first = MonteCarlo(seed=5).run(measure, trials=8)
    second = MonteCarlo(seed=5).run(measure, trials=8)
    assert first == second
    assert MonteCarlo(seed=6).run(measure, trials=8) != first


def test_montecarlo_run_explicit_seed_pins_draws():
    """run(seed=...) replays bit-for-bit regardless of earlier draws —
    the serve-bench --seed convention threaded into the engine."""
    mc = MonteCarlo(seed=5)
    first = mc.run(lambda rng: float(rng.uniform()), trials=6, seed=77)
    mc.normal(1.0, size=16)  # advance the runner's own stream arbitrarily
    mc.run(lambda rng: float(rng.uniform()), trials=3)
    second = mc.run(lambda rng: float(rng.uniform()), trials=6, seed=77)
    assert first == second
    assert mc.run(lambda rng: float(rng.uniform()), trials=6, seed=78) != first


def test_montecarlo_normal_explicit_rng():
    one = MonteCarlo(seed=1).normal(2.0, size=4, rng=np.random.default_rng(9))
    other = MonteCarlo(seed=999).normal(2.0, size=4, rng=np.random.default_rng(9))
    assert np.array_equal(one, other)


def test_montecarlo_run_seed_still_validates_trials():
    with pytest.raises(ConfigurationError):
        MonteCarlo(seed=5).run(lambda rng: 0.0, trials=0, seed=7)
