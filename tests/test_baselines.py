"""Tests for the baseline comparators (flash/TI ADC, electrical IMC,
and the Table I records)."""

import numpy as np
import pytest

from repro.baselines.electrical_imc import ElectricalImcMacro
from repro.baselines.flash_adc import FlashAdc
from repro.baselines.photonic_macros import format_table_one, table_one
from repro.baselines.ti_adc import TimeInterleavedElectricalAdc
from repro.core.eoadc import EoAdc
from repro.errors import ConfigurationError, ConversionError


class TestFlashAdc:
    def test_ideal_transfer(self):
        adc = FlashAdc(bits=3)
        for code in range(8):
            assert adc.convert((code + 0.5) * 0.5) == code

    def test_out_of_range(self):
        adc = FlashAdc(bits=3)
        with pytest.raises(ConversionError):
            adc.convert(4.0)

    def test_all_comparators_active_every_cycle(self):
        """The structural contrast with the 1-hot eoADC."""
        adc = FlashAdc(bits=3)
        assert adc.active_blocks_per_conversion == 7

    def test_power_grows_exponentially_with_bits(self):
        three = FlashAdc(bits=3).total_power
        six = FlashAdc(bits=6).total_power
        assert six > 5 * three

    def test_eoadc_beats_flash_at_matched_channel_power(self, tech):
        """With identical per-channel read-chain power, the eoADC's
        electrical draw undercuts the flash ADC's comparator bank."""
        flash = FlashAdc(bits=3, comparator_power=0.7975e-3)
        eoadc = EoAdc(tech)
        flash_electrical = flash.total_power
        eoadc_electrical = eoadc.power_ledger().total_for("electrical")
        # eoADC pays an optical budget instead, but the electrical
        # comparator-bank scaling is the flash bottleneck at high bits.
        assert FlashAdc(bits=6, comparator_power=0.7975e-3).total_power > 5 * flash_electrical
        assert eoadc_electrical < 2 * flash_electrical

    def test_offsets_can_create_dnl(self):
        clean = FlashAdc(bits=3, offset_sigma=0.0)
        noisy = FlashAdc(bits=3, offset_sigma=0.1, seed=4)
        ramp = np.linspace(0.01, 3.99, 999)
        clean_codes = [clean.convert(float(v)) for v in ramp]
        noisy_codes = [noisy.convert(float(v)) for v in ramp]
        assert clean_codes != noisy_codes

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlashAdc(bits=0)


class TestTimeInterleavedElectrical:
    def test_lane_rate(self):
        adc = TimeInterleavedElectricalAdc(lanes=8, aggregate_rate=8e9)
        assert adc.lane_rate == pytest.approx(1e9)

    def test_stream_with_no_mismatch_is_clean(self):
        adc = TimeInterleavedElectricalAdc(
            offset_sigma=0.0, gain_sigma=0.0, skew_sigma=0.0
        )
        codes = adc.convert_stream(lambda t: 2.1, count=16)
        assert codes == [4] * 16

    def test_mismatch_degrades_sndr(self):
        clean = TimeInterleavedElectricalAdc(offset_sigma=1e-6, gain_sigma=1e-6)
        dirty = TimeInterleavedElectricalAdc(offset_sigma=50e-3, gain_sigma=0.02)
        assert dirty.mismatch_sndr_db() < clean.mismatch_sndr_db()

    def test_calibration_power_tax(self):
        few = TimeInterleavedElectricalAdc(lanes=2)
        many = TimeInterleavedElectricalAdc(lanes=16)
        assert many.total_power > few.total_power

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TimeInterleavedElectricalAdc(lanes=1)
        adc = TimeInterleavedElectricalAdc()
        with pytest.raises(ConfigurationError):
            adc.convert_stream(lambda t: 1.0, count=0)


class TestElectricalImc:
    def test_rc_limits_grow_with_rows(self):
        small = ElectricalImcMacro(rows=16)
        tall = ElectricalImcMacro(rows=256)
        assert tall.access_time > small.access_time
        assert tall.compute_rate < small.compute_rate

    def test_update_rate_far_below_psram(self, tech):
        """The paper's headline: 20 GHz photonic updates vs ~1 GHz SRAM
        write cycles."""
        macro = ElectricalImcMacro()
        assert tech.psram.update_rate / macro.weight_update_rate >= 10.0

    def test_power_breakdown(self):
        macro = ElectricalImcMacro()
        names = list(macro.power_ledger().breakdown())
        assert "MAC array" in names and "column ADCs" in names

    def test_throughput_positive(self):
        macro = ElectricalImcMacro()
        assert macro.throughput_tops > 0
        assert macro.tops_per_watt > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ElectricalImcMacro(rows=0)


class TestTableOne:
    def test_contains_all_six_rows(self):
        records = table_one()
        assert len(records) == 6
        names = [record.name for record in records]
        assert "This Work" in names

    def test_this_work_values(self):
        this_work = table_one()[-1]
        assert this_work.throughput_tops == pytest.approx(4.10, abs=0.01)
        assert this_work.tops_per_watt == pytest.approx(3.02, abs=0.01)
        assert this_work.weight_update_hz == pytest.approx(20e9)

    def test_this_work_has_fastest_update_among_tunable_macros(self):
        """20 GHz beats every compared update path except the TFLN
        modulator-based [33] (which has no memory)."""
        records = {record.name: record for record in table_one()}
        this_work = records["This Work"]
        for name, record in records.items():
            if name in ("This Work", "TFLN tensor core [33]"):
                continue
            if record.weight_update_hz is not None:
                assert this_work.weight_update_hz > record.weight_update_hz

    def test_formatted_table_renders(self):
        text = format_table_one()
        assert "This Work" in text
        assert "4.10" in text and "3.02" in text and "20 GHz" in text
