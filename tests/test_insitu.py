"""Tests for in-situ training with photonic forward passes."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.ml.datasets import gaussian_blobs, train_test_split
from repro.ml.insitu import InSituTrainer


@pytest.fixture(scope="module")
def task(tech):
    features, labels = gaussian_blobs(
        samples_per_class=15, classes=3, features=6, spread=0.5
    )
    features = features / features.max()
    x_train, x_test, y_train, y_test = train_test_split(features, labels)
    core = PhotonicTensorCore(rows=3, columns=6, adc_bits=6, technology=tech)
    return core, x_train, x_test, y_train, y_test


def test_training_reduces_loss_and_improves_accuracy(task):
    core, x_train, x_test, y_train, y_test = task
    trainer = InSituTrainer(core, in_features=6, classes=3, learning_rate=0.3, gain=3.0)
    before = trainer.accuracy(x_test, y_test)
    log = trainer.fit(x_train, y_train, epochs=4)
    after = trainer.accuracy(x_test, y_test)
    assert log.epochs == 4
    assert log.losses[-1] < log.losses[0]
    assert after >= before
    assert after > 0.6


def test_updates_are_metered(task):
    core, x_train, _, y_train, _ = task
    trainer = InSituTrainer(core, in_features=6, classes=3, gain=3.0)
    assert trainer.update_energy() == 0.0
    log = trainer.fit(x_train[:10], y_train[:10], epochs=1)
    assert log.weight_switch_events[-1] > 0
    assert trainer.update_energy() > 0.0
    # Energy equals switches x 0.5 pJ within the ledger's tolerance.
    switches = log.weight_switch_events[-1]
    assert trainer.update_energy() == pytest.approx(switches * 0.5e-12, rel=0.01)


def test_update_rate_bound_matches_psram(task, tech):
    core, *_ = task
    trainer = InSituTrainer(core, in_features=6, classes=3)
    expected = tech.psram.update_rate / core.columns
    assert trainer.updates_per_second_bound() == pytest.approx(expected)


def test_photonic_scores_shape(task):
    core, x_train, *_ = task
    trainer = InSituTrainer(core, in_features=6, classes=3, gain=3.0)
    scores = trainer.photonic_scores(x_train[0])
    assert scores.shape == (3,)


def test_validation(task):
    core, x_train, _, y_train, _ = task
    with pytest.raises(ConfigurationError):
        InSituTrainer(core, in_features=0, classes=3)
    with pytest.raises(ConfigurationError):
        InSituTrainer(core, in_features=6, classes=1)
    with pytest.raises(ConfigurationError):
        InSituTrainer(core, in_features=6, classes=3, learning_rate=0.0)
    trainer = InSituTrainer(core, in_features=6, classes=3)
    with pytest.raises(ConfigurationError):
        trainer.fit(x_train, y_train, epochs=0)
    with pytest.raises(ConfigurationError):
        trainer.train_epoch(x_train, y_train[:-1])
