"""Tests for linearity analysis and report rendering."""

import numpy as np
import pytest

from repro.analysis.linearity import linear_fit, linearity_report
from repro.analysis.reporting import ascii_table, format_series
from repro.errors import ConfigurationError


def test_linear_fit_exact_line():
    x = np.linspace(0.0, 1.0, 20)
    slope, intercept = linear_fit(x, 3.0 * x + 0.5)
    assert slope == pytest.approx(3.0)
    assert intercept == pytest.approx(0.5)


def test_linear_fit_validation():
    with pytest.raises(ConfigurationError):
        linear_fit([1.0], [2.0])
    with pytest.raises(ConfigurationError):
        linear_fit([1.0, 2.0], [1.0])


def test_linearity_report_perfect_fit():
    x = np.linspace(0.0, 2.0, 50)
    report = linearity_report(x, 2.0 * x)
    assert report.r_squared == pytest.approx(1.0)
    assert report.max_abs_error == pytest.approx(0.0, abs=1e-12)
    assert report.is_linear()


def test_linearity_report_detects_nonlinearity():
    x = np.linspace(0.0, 2.0, 50)
    report = linearity_report(x, x**2)
    assert report.r_squared < 0.999
    assert not report.is_linear()
    assert report.rms_error > 0.0


def test_ascii_table_alignment():
    table = ascii_table(("a", "bb"), [("1", "2"), ("333", "4")])
    lines = table.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(line) <= len(max(lines, key=len)) for line in lines)


def test_ascii_table_validation():
    with pytest.raises(ConfigurationError):
        ascii_table((), [])
    with pytest.raises(ConfigurationError):
        ascii_table(("a",), [("1", "2")])


def test_format_series_full():
    text = format_series("x", "y", [1.0, 2.0], [10.0, 20.0])
    assert "x" in text and "20" in text


def test_format_series_decimation_keeps_endpoints():
    x = list(range(100))
    y = [2 * v for v in x]
    text = format_series("x", "y", x, y, max_rows=10)
    assert "0" in text.splitlines()[2]
    assert "99" in text.splitlines()[-1]


def test_format_series_validation():
    with pytest.raises(ConfigurationError):
        format_series("x", "y", [1.0], [])
    with pytest.raises(ConfigurationError):
        format_series("x", "y", [], [])
