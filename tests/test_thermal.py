"""Unit tests for thermal tuning, heaters and wavelength locking."""

import pytest

from repro.config import ThermalSpec
from repro.errors import ConfigurationError
from repro.photonics.thermal import Heater, ThermalTuner, WavelengthLocker


def test_thermal_tuner_shift_per_kelvin():
    tuner = ThermalTuner(ThermalSpec(shift_per_kelvin=75e-12))
    assert tuner.wavelength_shift(2.0) == pytest.approx(150e-12)
    assert tuner.wavelength_shift(-1.0) == pytest.approx(-75e-12)


def test_heater_power_to_shift():
    heater = Heater(ThermalSpec())
    heater.power = 1e-3
    assert heater.wavelength_shift() == pytest.approx(200e-12)


def test_heater_power_limits():
    heater = Heater(ThermalSpec(max_heater_power=2e-3))
    heater.power = 5e-3
    assert heater.power == 2e-3  # clamped at the maximum
    with pytest.raises(ConfigurationError):
        heater.power = -1e-3


def test_locker_cancels_static_drift():
    """The thermal-stabilization story of the paper's MRR discussion:
    a locker must null out an ambient drift within its heater range."""
    heater = Heater(ThermalSpec())
    locker = WavelengthLocker(heater, gain=0.6)
    residual = locker.lock(ambient_detuning=150e-12, iterations=30)
    assert abs(residual) < 2e-12


def test_locker_corrects_blue_drift_with_extra_heat():
    """Blue drift is cancelled by *raising* heater power above the bias
    (heaters only red-shift; the mid-range bias gives both directions)."""
    heater = Heater(ThermalSpec())
    locker = WavelengthLocker(heater, gain=0.6)
    residual = locker.lock(ambient_detuning=-150e-12, iterations=30)
    assert abs(residual) < 2e-12
    assert heater.power > locker.bias_power


def test_locker_gain_validation():
    heater = Heater(ThermalSpec())
    with pytest.raises(ConfigurationError):
        WavelengthLocker(heater, gain=0.0)
    with pytest.raises(ConfigurationError):
        WavelengthLocker(heater, gain=1.5)
