"""Shared fixtures.

Expensive device builds (ADCs, tensor cores, pSRAM transients) are
session-scoped; tests must not mutate them.  Tests that need to mutate
state build their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_technology
from repro.core.eoadc import EoAdc
from repro.core.psram import PsramBitcell
from repro.core.compute_core import VectorComputeCore
from repro.photonics.mrr import AddDropMRR, AllPassMRR
from repro.photonics.pn_junction import DepletionTuner, InjectionTuner


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(autouse=True)
def _fresh_deprecation_warnings():
    """The legacy shims deprecation-warn once per *process*; re-arm
    them per test so every test observes its own first use (and
    ``pytest.deprecated_call`` keeps seeing the warning)."""
    from repro.runtime import serving

    serving._WARNED.clear()


@pytest.fixture(scope="session")
def compute_ring(tech):
    """A weight/pSRAM-class add-drop ring (read-only)."""
    return AddDropMRR(
        tech.compute_ring_spec(),
        design_wavelength=tech.wavelength,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
        tuner=InjectionTuner(tech.injection),
    )


@pytest.fixture(scope="session")
def adc_ring(tech):
    """An eoADC-class all-pass ring (read-only)."""
    return AllPassMRR(
        tech.adc_ring_spec(),
        design_wavelength=tech.wavelength,
        design_voltage=0.0,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
        tuner=DepletionTuner(tech.depletion),
    )


@pytest.fixture(scope="session")
def ideal_adc(tech):
    """3-bit eoADC with perfect trim (read-only)."""
    return EoAdc(tech, trim_errors=np.zeros(tech.eoadc.levels))


@pytest.fixture(scope="session")
def trimmed_adc(tech):
    """3-bit eoADC with the default seeded trim residuals (read-only)."""
    return EoAdc(tech)


@pytest.fixture(scope="session")
def small_core(tech):
    """A 1x4, 3-bit vector compute core with a fixed weight vector."""
    core = VectorComputeCore(vector_length=4, weight_bits=3, technology=tech)
    core.load_weights([7, 3, 5, 1])
    return core


@pytest.fixture()
def psram_cell(tech):
    """A fresh pSRAM bitcell per test (stateful)."""
    return PsramBitcell(tech)
