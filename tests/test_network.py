"""Unit tests for the feed-forward photonic circuit evaluator."""

import pytest

from repro.errors import PortConnectionError
from repro.photonics.absorber import Absorber
from repro.photonics.coupler import PowerSplitter
from repro.photonics.laser import CWLaser
from repro.photonics.mrr import AddDropMRR
from repro.photonics.network import PhotonicCircuit
from repro.photonics.photodiode import Photodiode
from repro.photonics.signal import WDMSignal
from repro.photonics.waveguide import Waveguide


def build_basic_circuit(tech):
    circuit = PhotonicCircuit()
    circuit.add("laser", CWLaser(tech.wavelength, 10e-6))
    circuit.add("splitter", PowerSplitter())
    circuit.add(
        "ring",
        AddDropMRR(
            tech.compute_ring_spec(),
            design_wavelength=tech.wavelength,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
        ),
    )
    circuit.add("pd_thru", Photodiode())
    circuit.add("pd_drop", Photodiode())
    circuit.add("absorber", Absorber())
    circuit.connect("laser", "out", "splitter", "in")
    circuit.connect("splitter", "out1", "ring", "in")
    circuit.connect("splitter", "out2", "absorber", "in")
    circuit.connect("ring", "thru", "pd_thru", "in")
    circuit.connect("ring", "drop", "pd_drop", "in")
    return circuit


def test_evaluation_routes_power(tech):
    circuit = build_basic_circuit(tech)
    circuit.evaluate()
    pd_thru = circuit.component("pd_thru")
    pd_drop = circuit.component("pd_drop")
    absorber = circuit.component("absorber")
    assert absorber.last_absorbed_power == pytest.approx(5e-6)
    # Resonant ring: most of the 5 uW drops.
    assert pd_drop.last_input_power > 4e-6
    assert pd_thru.last_input_power < 0.1e-6
    total = pd_thru.last_input_power + pd_drop.last_input_power
    assert total < 5e-6  # ring loss dissipates the remainder


def test_external_sources_merge_with_wiring(tech):
    circuit = PhotonicCircuit()
    circuit.add("pd", Photodiode())
    circuit.evaluate({("pd", "in"): WDMSignal.single(tech.wavelength, 2e-6)})
    assert circuit.component("pd").last_input_power == pytest.approx(2e-6)


def test_duplicate_name_rejected():
    circuit = PhotonicCircuit()
    circuit.add("pd", Photodiode())
    with pytest.raises(PortConnectionError):
        circuit.add("pd", Photodiode())


def test_unknown_ports_rejected():
    circuit = PhotonicCircuit()
    circuit.add("a", Waveguide(0.0))
    circuit.add("b", Waveguide(0.0))
    with pytest.raises(PortConnectionError):
        circuit.connect("a", "nope", "b", "in")
    with pytest.raises(PortConnectionError):
        circuit.connect("a", "out", "b", "nope")


def test_double_drive_rejected():
    circuit = PhotonicCircuit()
    circuit.add("a", Waveguide(0.0))
    circuit.add("b", Waveguide(0.0))
    circuit.add("c", Waveguide(0.0))
    circuit.connect("a", "out", "c", "in")
    with pytest.raises(PortConnectionError):
        circuit.connect("b", "out", "c", "in")


def test_output_fanout_rejected():
    """Physical fan-out needs an explicit splitter."""
    circuit = PhotonicCircuit()
    circuit.add("a", Waveguide(0.0))
    circuit.add("b", Waveguide(0.0))
    circuit.add("c", Waveguide(0.0))
    circuit.connect("a", "out", "b", "in")
    with pytest.raises(PortConnectionError):
        circuit.connect("a", "out", "c", "in")


def test_cycle_detection():
    circuit = PhotonicCircuit()
    circuit.add("a", Waveguide(0.0))
    circuit.add("b", Waveguide(0.0))
    circuit.connect("a", "out", "b", "in")
    circuit.connect("b", "out", "a", "in")
    with pytest.raises(PortConnectionError):
        circuit.evaluate()


def test_missing_protocol_rejected():
    circuit = PhotonicCircuit()
    with pytest.raises(PortConnectionError):
        circuit.add("bad", object())


def test_unconnected_outputs_reported(tech):
    circuit = PhotonicCircuit()
    circuit.add("laser", CWLaser(tech.wavelength, 1e-3))
    assert circuit.unconnected_outputs() == [("laser", "out")]


def test_source_type_checked(tech):
    circuit = PhotonicCircuit()
    circuit.add("pd", Photodiode())
    with pytest.raises(PortConnectionError):
        circuit.evaluate({("pd", "in"): 1e-3})
