"""Tests for repro.telemetry: the modelled clock, metrics, tracing,
profiling hooks, and their wiring through the serving stack.

The two load-bearing guarantees:

* with a recorder attached, every serving surface narrates itself on
  the modelled clock (request/flush/batch/compile/cache/health/fleet
  spans) and the reports grow latency quantile summaries;
* without one, the serving path makes zero telemetry calls and every
  value and report is bit-for-bit identical to the instrumented run.
"""

import json

import numpy as np
import pytest

from repro.api import (
    ClusterReport,
    FlushPolicy,
    Model,
    PhotonicCluster,
    PhotonicSession,
    RoutingPolicy,
    RunReport,
)
from repro.api.graph import Dense, ReLU
from repro.errors import ClusterSaturatedError, ConfigurationError
from repro.health import HealthPolicy, ThermalDetuning, TiaGainDrift
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ModelClock,
    Telemetry,
    TraceRecorder,
    format_profile,
    profile_call,
    quantiles_from_samples,
    to_serializable,
)


# -- ModelClock --------------------------------------------------------------
def test_model_clock_starts_at_zero_and_advances():
    clock = ModelClock()
    assert clock.now == 0.0
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.5) == 2.0
    assert clock.now == 2.0


def test_model_clock_rejects_negative_advance():
    with pytest.raises(ConfigurationError):
        ModelClock().advance(-1e-9)


# -- quantiles_from_samples --------------------------------------------------
def test_quantiles_from_samples_empty_is_none():
    assert quantiles_from_samples([]) is None


def test_quantiles_from_samples_exact():
    summary = quantiles_from_samples([1.0, 2.0, 3.0, 4.0])
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(2.5)
    assert summary["max"] == 4.0
    assert summary["p50"] == pytest.approx(2.5)
    assert set(summary) == {"count", "mean", "max", "p50", "p95", "p99", "p999"}


# -- Counter / Gauge ---------------------------------------------------------
def test_counter_and_gauge():
    counter = Counter("requests")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ConfigurationError):
        counter.inc(-1)
    gauge = Gauge("pending")
    gauge.set(7)
    assert gauge.value == 7.0


# -- Histogram ---------------------------------------------------------------
def test_histogram_single_value_quantiles_are_exact():
    hist = Histogram("latency")
    hist.observe(2.5e-9)
    summary = hist.summary()
    assert summary["count"] == 1
    assert summary["mean"] == pytest.approx(2.5e-9)
    for key in ("p50", "p95", "p99", "p999"):
        assert summary[key] == pytest.approx(2.5e-9)


def test_histogram_quantile_accuracy_within_bin_resolution():
    hist = Histogram("latency", per_decade=16)
    values = np.geomspace(1e-8, 1e-2, 2000)
    hist.observe_many(values)
    exact = np.quantile(values, 0.5)
    # One bin spans a factor 10^(1/16) ~ 1.155, so the interpolated
    # quantile must land well within one bin of the exact value.
    assert hist.quantile(0.5) == pytest.approx(exact, rel=0.16)
    assert hist.count == 2000
    assert hist.mean == pytest.approx(values.mean())
    assert hist.max == values.max()


def test_histogram_underflow_overflow_clamp_to_observed():
    hist = Histogram("latency", lo=1e-6, hi=1e-3)
    hist.observe_many([1e-9, 1e2])
    assert hist.quantile(0.0) == 1e-9
    assert hist.quantile(1.0) == 1e2


def test_histogram_rejects_negative_and_bad_layout():
    hist = Histogram("latency")
    with pytest.raises(ConfigurationError):
        hist.observe(-1.0)
    with pytest.raises(ConfigurationError):
        Histogram("bad", lo=1.0, hi=0.5)
    with pytest.raises(ConfigurationError):
        hist.quantile(1.5)


def test_histogram_merge_adds_and_checks_layout():
    one, two = Histogram("a"), Histogram("b")
    one.observe_many([1e-6, 2e-6])
    two.observe_many([4e-6])
    one.merge(two)
    assert one.count == 3
    assert one.max == 4e-6
    with pytest.raises(ConfigurationError):
        one.merge(Histogram("c", per_decade=8))


def test_histogram_merged_guards_empty_inputs():
    # The empty-fleet guard: nothing in, None out (never a fake zero
    # distribution).
    assert Histogram.merged([]) is None
    assert Histogram.merged([None, None]) is None
    merged = Histogram.merged([None, _observed(1e-6), _observed(2e-6)])
    assert merged.count == 2
    assert Histogram("empty").summary() is None


def _observed(value):
    hist = Histogram("h")
    hist.observe(value)
    return hist


def test_histogram_quantile_bounds_are_observed_min_max():
    # q=0 / q=1 pin to the exact observed extremes, not bin edges.
    hist = Histogram("latency")
    hist.observe_many([1.3e-6, 4.7e-6, 9.1e-6])
    assert hist.quantile(0.0) == 1.3e-6
    assert hist.quantile(1.0) == 9.1e-6


def test_histogram_single_sample_every_quantile_is_the_sample():
    hist = Histogram("latency")
    hist.observe(3.7e-5)
    for q in (0.0, 0.25, 0.5, 0.99, 1.0):
        assert hist.quantile(q) == pytest.approx(3.7e-5)


def test_histogram_all_underflow_clamps_to_observed_range():
    # Every observation lands in the underflow bucket: quantiles must
    # report the observed values, never invent the `lo` edge.
    hist = Histogram("latency", lo=1e-6, hi=1e-3)
    hist.observe_many([1e-9, 2e-9, 3e-9])
    summary = hist.summary()
    assert summary["count"] == 3
    assert summary["max"] == 3e-9
    assert hist.quantile(0.0) == 1e-9
    assert summary["p50"] == 1e-9
    assert hist.quantile(1.0) == 3e-9


def test_histogram_all_overflow_clamps_to_observed_range():
    hist = Histogram("latency", lo=1e-6, hi=1e-3)
    hist.observe_many([1.0, 2.0, 4.0])
    summary = hist.summary()
    assert summary["count"] == 3
    assert hist.quantile(0.0) == 1.0
    assert summary["p50"] == 4.0  # the overflow bucket reports max
    assert hist.quantile(1.0) == 4.0


def test_histogram_merge_disjoint_bins_keeps_both_populations():
    # Two histograms whose occupied bins never overlap (decades apart)
    # merge into a bimodal distribution with both modes intact.
    low, high = Histogram("low"), Histogram("high")
    low.observe_many([1.0e-8, 1.2e-8, 1.4e-8])
    high.observe_many([1.0e-2, 1.2e-2, 1.4e-2])
    merged = Histogram.merged([low, high], name="both")
    assert merged.count == 6
    assert merged.min == 1.0e-8
    assert merged.max == 1.4e-2
    assert merged.quantile(0.0) == 1.0e-8
    assert merged.quantile(1.0) == 1.4e-2
    # Quantiles on either side of the gap land in the right mode.
    assert merged.quantile(0.25) < 1e-7
    assert merged.quantile(0.75) > 1e-3


def test_quantiles_from_samples_single_sample_and_bounds():
    summary = quantiles_from_samples([0.125])
    assert summary["count"] == 1
    for key in ("mean", "max", "p50", "p95", "p99", "p999"):
        assert summary[key] == 0.125


# -- MetricsRegistry ---------------------------------------------------------
def test_registry_get_or_create_identity():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    assert registry.gauge("y") is registry.gauge("y")
    assert registry.histogram("z") is registry.histogram("z")
    assert registry.names == ["x", "y", "z"]
    exported = registry.to_dict()
    assert exported["counters"] == {"x": 0}
    assert exported["histograms"]["z"] is None  # nothing observed yet


# -- TraceRecorder -----------------------------------------------------------
def test_trace_recorder_tracks_and_chrome_export():
    recorder = TraceRecorder(label="test")
    pid = recorder.process("session")
    assert recorder.process("session") == pid  # stable on re-lookup
    tid = recorder.thread(pid, "core 0")
    recorder.complete("flush #1", "flush", pid, tid, 1e-6, 2e-6,
                      args={"requests": 3})
    recorder.instant("cache_hit", "cache", pid, tid, 2e-6)
    assert len(recorder) == 2
    assert len(recorder.events_in("flush")) == 1

    chrome = recorder.to_chrome()
    events = chrome["traceEvents"]
    # Metadata first: process_name then thread_name.
    assert events[0]["ph"] == "M" and events[0]["args"]["name"] == "session"
    assert events[1]["ph"] == "M" and events[1]["args"]["name"] == "core 0"
    span = next(event for event in events if event.get("ph") == "X")
    assert span["ts"] == pytest.approx(1.0)    # modelled s -> Chrome us
    assert span["dur"] == pytest.approx(2.0)
    assert span["args"] == {"requests": 3}
    instant = next(event for event in events if event.get("ph") == "i")
    assert instant["s"] == "t"


def test_trace_recorder_rejects_negative_duration():
    recorder = TraceRecorder()
    with pytest.raises(ConfigurationError):
        recorder.complete("bad", "flush", 1, 1, 0.0, -1.0)


def test_trace_recorder_save_round_trips(tmp_path):
    recorder = TraceRecorder()
    pid = recorder.process("p")
    recorder.complete("span", "batch", pid, recorder.thread(pid, "t"), 0.0, 1.0)
    out = recorder.save(tmp_path / "trace.json")
    payload = json.loads(out.read_text())
    assert payload["otherData"]["clock"] == "modelled"
    assert any(event.get("ph") == "X" for event in payload["traceEvents"])


# -- session tracing ---------------------------------------------------------
def _mixed_workload(session, rng):
    """Native + tiled + conv + model traffic, deterministic."""
    values = []
    native_w = rng.integers(0, 8, (4, 6))
    tiled_w = rng.integers(0, 8, (7, 9))
    kernels = rng.normal(0.0, 1.0, (2, 3, 3))
    image = rng.uniform(0.0, 1.0, (6, 6))
    futures = [session.submit(native_w, rng.uniform(0.0, 1.0, 6))
               for _ in range(4)]
    futures.append(session.submit(tiled_w, rng.uniform(0.0, 1.0, 9)))
    futures.append(session.submit_conv(kernels, image))
    model = Model.sequential(Dense(rng.normal(0.0, 0.5, (3, 6))), ReLU())
    endpoint = session.compile(model)
    futures.append(endpoint.submit(rng.uniform(0.0, 1.0, (2, 6))))
    session.flush()
    # Repeat the native tenant so the program cache hits.
    futures.append(session.submit(native_w, rng.uniform(0.0, 1.0, 6)))
    session.flush()
    for future in futures:
        values.append(np.asarray(future.result(), dtype=float))
    return values, session.report()


def test_session_trace_covers_the_request_lifecycle():
    recorder = TraceRecorder()
    session = PhotonicSession(grid=(4, 6), trace=recorder, label="traced")
    rng = np.random.default_rng(11)
    _mixed_workload(session, rng)

    categories = {event.category for event in recorder.events}
    assert {"request", "flush", "batch", "compile", "cache"} <= categories
    # Request spans carry the route and land on the requests track.
    request_spans = recorder.events_in("request")
    routes = {span.args["route"] for span in request_spans}
    assert {"native", "tiled", "conv", "model"} <= routes
    assert all(span.duration_s >= 0.0 for span in request_spans)
    # The second flush's native submit hit the program cache.
    hits = [event for event in recorder.events_in("cache")
            if event.name == "cache_hit"]
    assert hits
    # Flush spans cover their batches on the modelled clock.
    flush_spans = recorder.events_in("flush")
    assert len(flush_spans) == 2
    assert all(span.args["requests"] >= 1 for span in flush_spans)


def test_session_latency_quantiles_per_flush_and_cumulative():
    session = PhotonicSession(grid=(4, 6), trace=TraceRecorder())
    rng = np.random.default_rng(3)
    weights = rng.integers(0, 8, (4, 6))
    futures = [session.submit(weights, rng.uniform(0.0, 1.0, 6))
               for _ in range(5)]
    session.flush()

    per_flush = futures[0].report.latency_quantiles
    assert per_flush is not None
    assert per_flush["end_to_end"]["count"] == 5
    assert per_flush["end_to_end"]["p999"] >= per_flush["end_to_end"]["p50"] > 0.0
    assert per_flush["queue_wait"]["count"] == 5

    cumulative = session.report().latency_quantiles
    assert cumulative is not None
    assert cumulative["end_to_end"]["count"] == 5
    assert cumulative["end_to_end"]["max"] == pytest.approx(
        per_flush["end_to_end"]["max"]
    )


def test_metrics_only_binding_works_without_recorder():
    registry = MetricsRegistry()
    session = PhotonicSession(grid=(4, 6), metrics=registry)
    assert session.telemetry is not None and session.telemetry.trace is None
    rng = np.random.default_rng(5)
    session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    session.flush()
    assert registry.counter("requests").value == 1
    assert registry.counter("flushes").value == 1
    assert session.report().latency_quantiles is not None


def test_session_rejects_bad_telemetry_arguments():
    with pytest.raises(ConfigurationError):
        PhotonicSession(grid=(4, 6), trace="not a recorder")
    with pytest.raises(ConfigurationError):
        PhotonicSession(grid=(4, 6), telemetry="not a binding")


# -- overhead-freeness -------------------------------------------------------
def test_uninstrumented_session_makes_zero_telemetry_calls(monkeypatch):
    """No recorder -> the hot path never enters a Telemetry method."""
    def boom(self, *args, **kwargs):
        raise AssertionError("telemetry call on an uninstrumented session")

    for method in ("span", "instant", "request_span", "record_request",
                   "drain_window", "latency_quantiles"):
        monkeypatch.setattr(Telemetry, method, boom)
    session = PhotonicSession(grid=(4, 6))
    assert session.telemetry is None
    rng = np.random.default_rng(11)
    values, report = _mixed_workload(session, rng)
    assert report.requests == 8
    assert report.latency_quantiles is None


def test_traced_run_is_bit_for_bit_identical_to_untraced():
    """The recorder observes; it must never perturb a single value."""
    plain_values, plain_report = _mixed_workload(
        PhotonicSession(grid=(4, 6)), np.random.default_rng(11)
    )
    traced_values, traced_report = _mixed_workload(
        PhotonicSession(grid=(4, 6), trace=TraceRecorder()),
        np.random.default_rng(11),
    )
    assert len(plain_values) == len(traced_values)
    for plain, traced in zip(plain_values, traced_values):
        assert np.array_equal(plain, traced)
    # Every ledger matches; only latency_quantiles differs (None vs
    # populated) by design.
    for field in RunReport.__dataclass_fields__:
        if field == "latency_quantiles":
            continue
        assert getattr(plain_report, field) == getattr(traced_report, field), field
    assert plain_report.latency_quantiles is None
    assert traced_report.latency_quantiles is not None


# -- RunReport.combined guards ----------------------------------------------
def test_run_report_combined_empty_is_all_zero():
    combined = RunReport.combined([])
    assert combined.requests == 0
    assert combined.flush_index == 0
    assert combined.analog_time == 0.0
    assert combined.latency_quantiles is None


def test_run_report_combined_drops_non_additive_quantiles():
    report = RunReport(
        flush_index=1, requests=2, batches=1, samples=2, cache_hits=1,
        cache_misses=1, cache_evictions=0, weight_energy_spent=0.0,
        weight_energy_saved=0.0, weight_time_spent=0.0, analog_time=1e-9,
        analog_energy=0.0,
        latency_quantiles={"end_to_end": {"p50": 1e-9}},
    )
    combined = RunReport.combined([report, report])
    assert combined.requests == 4
    assert combined.latency_quantiles is None


# -- cluster telemetry -------------------------------------------------------
def test_cluster_merges_per_core_quantiles():
    recorder = TraceRecorder()
    cluster = PhotonicCluster(
        cores=2, grid=(4, 6), routing=RoutingPolicy.round_robin(),
        trace=recorder,
    )
    rng = np.random.default_rng(9)
    weights = [rng.integers(0, 8, (4, 6)) for _ in range(2)]
    for turn in range(8):
        cluster.submit(weights[turn % 2], rng.uniform(0.0, 1.0, 6))
    cluster.flush()

    report = cluster.report()
    assert report.latency_quantiles is not None
    assert report.latency_quantiles["end_to_end"]["count"] == 8
    # Both cores carry their own track in the shared recorder.
    chrome = recorder.to_chrome()
    track_names = {event["args"]["name"] for event in chrome["traceEvents"]
                   if event.get("ph") == "M"}
    assert {"core 0", "core 1", "fleet"} <= track_names
    assert "fleet end-to-end" in str(report)


def test_cluster_without_telemetry_reports_no_quantiles():
    cluster = PhotonicCluster(cores=2, grid=(4, 6))
    rng = np.random.default_rng(9)
    cluster.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    cluster.flush()
    assert cluster.report().latency_quantiles is None


def test_cluster_with_telemetry_but_no_traffic_reports_no_quantiles():
    cluster = PhotonicCluster(cores=2, grid=(4, 6), trace=TraceRecorder())
    assert cluster.report().latency_quantiles is None


def test_cluster_fleet_instants_shed_drain_restore():
    recorder = TraceRecorder()
    cluster = PhotonicCluster(
        cores=2, grid=(4, 6), max_pending=1, trace=recorder
    )
    rng = np.random.default_rng(2)
    weights = rng.integers(0, 8, (4, 6))
    cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
    with pytest.raises(ClusterSaturatedError):
        cluster.submit(weights, rng.uniform(0.0, 1.0, 6))
    cluster.flush()
    cluster.drain(0)
    cluster.restore(0)

    fleet_events = {event.name for event in recorder.events_in("fleet")}
    assert "shed" in fleet_events
    assert "drain core 0" in fleet_events
    assert "restore core 0" in fleet_events
    fleet_metrics = cluster.telemetry.metrics
    assert fleet_metrics.counter("shed").value == 1
    assert fleet_metrics.counter("routed").value == 1
    assert fleet_metrics.counter("drains").value == 1


def test_cluster_rejects_bad_telemetry_arguments():
    with pytest.raises(ConfigurationError):
        PhotonicCluster(cores=2, grid=(4, 6), trace="nope")
    with pytest.raises(ConfigurationError):
        PhotonicCluster(cores=2, grid=(4, 6), metrics="nope")


# -- health spans ------------------------------------------------------------
def test_probe_and_recalibrate_spans_land_on_the_health_track():
    recorder = TraceRecorder()
    session = PhotonicSession(
        grid=(4, 6),
        trace=recorder,
        drift=[ThermalDetuning(amplitude_kelvin=0.6, period_s=45.0),
               TiaGainDrift(drift_per_s=-2e-3)],
    )
    rng = np.random.default_rng(4)
    session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    session.flush()
    session.age(90.0)
    session.check_health()
    session.recalibrate()

    health = recorder.events_in("health")
    names = {event.name for event in health}
    assert "probe check" in names
    assert "recalibrate" in names
    assert "compile probes" in names
    probe = next(event for event in health if event.name == "probe check")
    assert probe.duration_s > 0.0
    assert "code_error_rate" in probe.args
    # age() advanced the modelled clock past the idle gap.
    assert session.telemetry.clock.now > 90.0


# -- report export -----------------------------------------------------------
def test_reports_export_to_dict_and_json():
    session = PhotonicSession(grid=(4, 6), trace=TraceRecorder())
    rng = np.random.default_rng(6)
    session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    session.flush()
    report = session.report()
    exported = report.to_dict()
    assert exported["requests"] == 1
    assert json.loads(report.to_json())["flush_index"] == 1

    cluster = PhotonicCluster(cores=2, grid=(4, 6))
    cluster.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    cluster.flush()
    cluster_dict = cluster.report().to_dict()
    assert cluster_dict["cores"] == 2
    assert isinstance(cluster_dict["per_core"], list)
    json.dumps(cluster_dict)  # fully JSON-ready, numpy included

    drift_session = PhotonicSession(
        grid=(4, 6), drift=[TiaGainDrift(drift_per_s=-1e-3)]
    )
    drift_session.age(10.0)
    health = drift_session.check_health()
    health_dict = health.to_dict()
    assert health_dict["probes"] == health.probes
    json.dumps(health_dict)

    assert to_serializable(np.float64(1.5)) == 1.5
    assert to_serializable((np.int64(2),)) == [2]


# -- profiling ---------------------------------------------------------------
def test_profile_call_ranks_hot_functions():
    def workload():
        return sum(index * index for index in range(50_000))

    result, rows = profile_call(workload, top=5)
    assert result == sum(index * index for index in range(50_000))
    assert 1 <= len(rows) <= 5
    assert set(rows[0]) == {"function", "calls", "tottime_s", "cumtime_s"}
    # Sorted by cumulative time, descending.
    cumtimes = [row["cumtime_s"] for row in rows]
    assert cumtimes == sorted(cumtimes, reverse=True)
    text = format_profile(rows)
    assert text.startswith(f"profile (top {len(rows)} by cumulative time):")
    assert "function" in text


def test_profile_call_rejects_bad_top():
    with pytest.raises(ConfigurationError):
        profile_call(lambda: None, top=0)
