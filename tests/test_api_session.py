"""Tests for the one front door (repro.api): session, futures,
flush policies, deployed models and the unified RunReport."""

import time

import numpy as np
import pytest

from repro.api import (
    Conv2d,
    Dense,
    FlushPolicy,
    Model,
    PhotonicSession,
    ReLU,
    RunReport,
)
from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError, PendingFlushError
from repro.ml.convolution import PhotonicConv2d
from repro.ml.datasets import gaussian_blobs
from repro.ml.network import MLP, PhotonicMLP


@pytest.fixture()
def session(tech):
    return PhotonicSession(technology=tech, grid=(4, 6), cache_capacity=4,
                           max_batch=16)


class TestSessionConstruction:
    def test_grid_is_rows_columns(self, session):
        assert session.rows == 4 and session.columns == 6
        assert session.core.rows == 4

    def test_grid_and_rows_are_exclusive(self, tech):
        with pytest.raises(ConfigurationError, match="not both"):
            PhotonicSession(technology=tech, grid=(4, 6), rows=4)
        with pytest.raises(ConfigurationError, match="pair"):
            PhotonicSession(technology=tech, grid=4)

    def test_default_policy_is_explicit(self, session):
        assert session.flush_policy.describe() == "explicit"


class TestFutures:
    def test_result_auto_flushes(self, session, tech):
        rng = np.random.default_rng(1)
        weights = rng.integers(0, 8, (4, 6))
        x = rng.uniform(0.0, 1.0, 6)
        future = session.submit(weights, x)
        assert not future.done and session.pending == 1
        estimates = future.result()          # no hand-called flush
        assert future.done and session.pending == 0
        reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        reference.load_weight_matrix(weights)
        expected = reference.matvec(x)
        assert np.allclose(estimates, expected.estimates)
        np.testing.assert_array_equal(future.codes, expected.codes)

    def test_pending_reads_raise_pending_flush_error(self, session):
        rng = np.random.default_rng(2)
        future = session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        # A RuntimeError naming the pending flush — not None, and still
        # a ConfigurationError for seed-era except clauses.
        for read in (lambda: future.value, lambda: future.codes,
                     lambda: future.report, lambda: future.result(flush=False)):
            with pytest.raises(RuntimeError, match="flush #1"):
                read()
            with pytest.raises(ConfigurationError, match="not flushed"):
                read()
        with pytest.raises(PendingFlushError, match="result\\(\\)"):
            future.result(flush=False)
        session.flush()
        assert future.value.shape == (4,)

    def test_tiled_and_conv_futures(self, session):
        rng = np.random.default_rng(3)
        tiled = session.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
        conv = session.submit_conv(rng.normal(0.0, 1.0, (2, 3, 3)),
                                   rng.uniform(0.0, 1.0, (5, 5)))
        assert conv.shape == (2, 3, 3)
        session.flush()
        assert tiled.value.shape == (7,)
        assert tiled.codes is None           # digital partial sums: no single code
        assert conv.value.shape == (2, 3, 3)

    def test_flush_report_attached_and_shared(self, session):
        rng = np.random.default_rng(4)
        first = session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        second = session.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
        session.flush()
        assert isinstance(first.report, RunReport)
        assert first.report is second.report          # one report per flush
        report = first.report
        assert report.flush_index == 1
        assert report.requests == 2
        assert report.cache_misses == 2 and report.cache_hits == 0
        assert report.analog_time > 0.0 and report.analog_energy > 0.0
        assert report.total_energy >= report.analog_energy
        # The next flush reports only its own delta.
        session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        third = session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        session.flush()
        assert third.report.flush_index == 2
        assert third.report.requests == 2
        cumulative = session.report()
        assert cumulative.requests == 4
        assert cumulative.flush_index == 2


class TestFlushPolicies:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError, match="batch limit"):
            FlushPolicy.max_batch(0)
        with pytest.raises(ConfigurationError, match="delay limit"):
            FlushPolicy.max_delay(-1.0)

    def test_max_batch_auto_flushes(self, tech):
        session = PhotonicSession(technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_batch(3))
        rng = np.random.default_rng(5)
        weights = rng.integers(0, 8, (4, 6))
        futures = [session.submit(weights, rng.uniform(0.0, 1.0, 6))
                   for _ in range(3)]
        # The third submit tripped the policy: everything resolved.
        assert all(future.done for future in futures)
        assert session.pending == 0 and session.flushes == 1

    def test_max_delay_flushes_on_next_submit(self, tech):
        session = PhotonicSession(technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_delay(0.005))
        rng = np.random.default_rng(6)
        weights = rng.integers(0, 8, (4, 6))
        first = session.submit(weights, rng.uniform(0.0, 1.0, 6))
        assert not first.done                 # deadline not reached yet
        time.sleep(0.01)
        second = session.submit(weights, rng.uniform(0.0, 1.0, 6))
        assert first.done and second.done     # deadline tripped the flush

    def test_poll_enforces_max_delay_without_new_traffic(self, tech):
        """Regression: a lone request must not sit past its max_delay
        deadline just because no further submit/result call arrives —
        poll() re-checks the deadline on wall-clock time alone."""
        session = PhotonicSession(technology=tech, grid=(4, 6),
                                  flush_policy=FlushPolicy.max_delay(0.005))
        rng = np.random.default_rng(8)
        future = session.submit(rng.integers(0, 8, (4, 6)),
                                rng.uniform(0.0, 1.0, 6))
        assert session.poll() == 0            # deadline not reached yet
        assert not future.done
        time.sleep(0.01)
        assert session.poll() == 1            # deadline tripped: flushed
        assert future.done and session.pending == 0
        assert session.poll() == 0            # idle poll is a no-op
        assert session.flushes == 1

    def test_poll_respects_explicit_policy(self, session):
        rng = np.random.default_rng(9)
        session.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        time.sleep(0.002)
        assert session.poll() == 0            # explicit never auto-flushes
        assert session.pending == 1

    def test_explicit_policy_never_auto_flushes(self, session):
        rng = np.random.default_rng(7)
        weights = rng.integers(0, 8, (4, 6))
        futures = [session.submit(weights, rng.uniform(0.0, 1.0, 6))
                   for _ in range(20)]
        assert not any(future.done for future in futures)
        assert session.flush() == 20


class TestLegacyEquivalence:
    """The session must serve codes bit-for-bit equal to the legacy
    InferenceServer paths (which now shim onto it)."""

    def test_dense_routes_match_legacy_server(self, tech):
        from repro.runtime.serving import InferenceServer

        rng = np.random.default_rng(8)
        session = PhotonicSession(technology=tech, grid=(4, 6))
        with pytest.deprecated_call():
            server = InferenceServer(rows=4, columns=6, technology=tech)
        native_w = rng.integers(0, 8, (4, 6))
        tiled_w = rng.integers(0, 8, (7, 9))
        native_x = rng.uniform(0.0, 1.0, 6)
        tiled_x = rng.uniform(0.0, 1.0, 9)

        session_native = session.submit(native_w, native_x)
        session_tiled = session.submit(tiled_w, tiled_x, gain="auto")
        server_native = server.submit(native_w, native_x)
        server_tiled = server.submit(tiled_w, tiled_x, gain="auto")
        session.flush()
        server.flush()
        np.testing.assert_array_equal(session_native.value, server_native.estimates)
        np.testing.assert_array_equal(session_tiled.value, server_tiled.estimates)

    def test_conv_route_matches_legacy_server(self, tech):
        from repro.runtime.serving import InferenceServer

        rng = np.random.default_rng(9)
        session = PhotonicSession(technology=tech, grid=(4, 9))
        with pytest.deprecated_call():
            server = InferenceServer(rows=4, columns=9, technology=tech)
        kernels = rng.normal(0.0, 1.0, (3, 3, 3))
        image = rng.uniform(0.0, 1.0, (7, 7))
        session_future = session.submit_conv(kernels, image)
        server_ticket = server.submit_conv(kernels, image)
        session.flush()
        server.flush()
        np.testing.assert_array_equal(session_future.value,
                                      server_ticket.feature_maps)


class TestDeployedModels:
    def test_compile_rejects_non_models(self, session):
        with pytest.raises(ConfigurationError, match="Model"):
            session.compile(np.ones((2, 2)))

    def test_mlp_endpoint_matches_photonic_mlp(self, tech):
        X, y = gaussian_blobs(samples_per_class=10, classes=3, features=6,
                              spread=0.5)
        mlp = MLP(6, 4, 3)
        mlp.train(X, y, epochs=5)
        session = PhotonicSession(technology=tech, grid=(4, 6))
        endpoint = session.compile(Model.from_mlp(mlp), calibration=X[:8],
                                   label="blobs")
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        reference = PhotonicMLP(mlp, core, calibration_batch=X[:8], runtime=True)
        outputs = endpoint.predict(X[:10])
        np.testing.assert_allclose(outputs, reference.forward(X[:10]))

    def test_conv_endpoint_matches_conv_layer(self, session, tech):
        rng = np.random.default_rng(11)
        kernels = rng.normal(0.0, 1.0, (2, 3, 3))
        images = rng.uniform(0.0, 1.0, (3, 6, 6))
        endpoint = session.compile(Model.sequential(Conv2d(kernels)))
        core = PhotonicTensorCore(rows=4, columns=6, technology=tech)
        reference = PhotonicConv2d(kernels, core, runtime=True)
        np.testing.assert_allclose(endpoint.predict(images),
                                   reference.forward_batch(images))

    def test_submits_coalesce_and_futures_split(self, session):
        rng = np.random.default_rng(12)
        weights = rng.normal(0.0, 1.0, (3, 6))
        endpoint = session.compile(Model.sequential(Dense(weights)))
        first = endpoint.submit(rng.uniform(0.0, 1.0, (2, 6)))
        second = endpoint.submit(rng.uniform(0.0, 1.0, (5, 6)))
        assert session.pending == 2
        session.flush()
        assert first.value.shape == (2, 3)
        assert second.value.shape == (5, 3)
        assert first.report is second.report
        assert first.report.requests == 2
        # One coalesced evaluation, not one per submit.
        assert first.report.batches == 1

    def test_endpoint_input_validation(self, session):
        rng = np.random.default_rng(13)
        vector_model = session.compile(
            Model.sequential(Dense(rng.normal(0.0, 1.0, (3, 6)))))
        with pytest.raises(ConfigurationError, match="samples, features"):
            vector_model.submit(np.ones(6))
        image_model = session.compile(
            Model.sequential(Conv2d(rng.normal(0.0, 1.0, (2, 3, 3)))))
        with pytest.raises(ConfigurationError, match="image batch"):
            image_model.submit(np.ones((6, 6)))

    def test_calibration_feature_mismatch_raises(self, session):
        rng = np.random.default_rng(14)
        model = Model.sequential(Dense(rng.normal(0.0, 1.0, (3, 6))))
        with pytest.raises(ConfigurationError, match="features"):
            session.compile(model, calibration=np.ones((4, 5)))

    def test_recompiled_model_hits_program_cache(self, session):
        rng = np.random.default_rng(15)
        model = Model.sequential(Dense(rng.normal(0.0, 1.0, (3, 6))))
        session.compile(model)
        spent_once = session.report().weight_energy_spent
        assert spent_once > 0.0
        session.compile(model)               # same quantized program
        report = session.report()
        assert report.weight_energy_spent == spent_once
        assert report.weight_energy_saved == pytest.approx(spent_once)
        assert report.cache_hits == 1

    def test_model_conv_program_shared_with_conv_route(self, session):
        """A compiled Conv2d layer and submit_conv of the same bank
        share one cached differential program."""
        rng = np.random.default_rng(16)
        kernels = rng.normal(0.0, 1.0, (2, 3, 3))
        session.compile(Model.sequential(Conv2d(kernels)))
        assert session.tiled_cache.misses == 1
        future = session.submit_conv(kernels, rng.uniform(0.0, 1.0, (5, 5)))
        session.flush()
        assert future.done
        assert session.tiled_cache.hits == 1   # reused the model's program

    def test_program_compiles_count_weight_streaming_time(self, session):
        rng = np.random.default_rng(18)
        session.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
        session.flush()
        report = session.report()
        # The tiled grid compile streamed weights: both the energy and
        # the time ledgers move, and latency covers more than analog.
        assert report.weight_energy_spent > 0.0
        assert report.weight_time_spent > 0.0
        assert report.total_latency > report.analog_time

    def test_failed_flush_abandons_futures(self, session, monkeypatch):
        rng = np.random.default_rng(19)
        future = session.submit(rng.integers(0, 8, (7, 9)),
                                rng.uniform(0.0, 1.0, 9))

        def boom(now=None):
            raise ValueError("injected flush failure")

        monkeypatch.setattr(session.scheduler, "flush", boom)
        with pytest.raises(ValueError, match="injected"):
            session.flush()
        monkeypatch.undo()
        # The queue was cleared; the future must say so instead of
        # suggesting a re-flush that can never resolve it.
        assert future.abandoned and not future.done
        with pytest.raises(PendingFlushError, match="re-submit"):
            future.value
        with pytest.raises(PendingFlushError, match="dropped"):
            future.result()          # must not loop on a futile flush
        # The session itself is not wedged: fresh requests still serve.
        fresh = session.submit(rng.integers(0, 8, (4, 6)),
                               rng.uniform(0.0, 1.0, 6))
        assert len(fresh.result()) == 4

    def test_model_accounting_reaches_report(self, session):
        rng = np.random.default_rng(17)
        endpoint = session.compile(
            Model.sequential(Dense(rng.normal(0.0, 1.0, (3, 6))), ReLU(),
                             Dense(rng.normal(0.0, 1.0, (2, 3)))))
        endpoint.predict(rng.uniform(0.0, 1.0, (4, 6)))
        report = session.report()
        # Two differential dense layers: 2 passes x 4 samples each.
        assert report.samples == 16
        assert report.analog_time > 0.0 and report.analog_energy > 0.0
        period = 1.0 / session.performance.sample_rate
        assert report.analog_time == pytest.approx(16 * period)
