"""Unit tests for storage nodes and inverter drivers."""

import pytest

from repro.electronics.driver import InverterDriver
from repro.electronics.elements import StorageNode
from repro.errors import ConfigurationError, SimulationError


def test_node_integrates_current():
    node = StorageNode(capacitance=5e-15, vdd=1.8, initial_voltage=0.0)
    node.integrate(1e-3, 1e-12)  # 1 mA for 1 ps on 5 fF -> 0.2 V
    assert node.voltage == pytest.approx(0.2)


def test_node_clamps_at_rails():
    node = StorageNode(capacitance=5e-15, vdd=1.8, initial_voltage=1.7)
    node.integrate(1e-3, 10e-12)  # would overshoot far beyond VDD
    assert node.voltage == 1.8
    node.integrate(-1e-3, 100e-12)
    assert node.voltage == 0.0


def test_node_logic_state_threshold():
    node = StorageNode(5e-15, 1.8, 1.0)
    assert node.logic_state
    node.voltage = 0.3
    assert not node.logic_state


def test_node_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        StorageNode(0.0, 1.8)
    with pytest.raises(ConfigurationError):
        StorageNode(5e-15, 1.8, initial_voltage=2.0)
    node = StorageNode(5e-15, 1.8)
    with pytest.raises(SimulationError):
        node.integrate(1e-6, 0.0)
    with pytest.raises(ConfigurationError):
        node.voltage = -0.1


def test_node_stored_energy():
    node = StorageNode(10e-15, 1.8, 1.8)
    assert node.stored_energy() == pytest.approx(0.5 * 10e-15 * 1.8**2)


def test_driver_slews_toward_rail():
    driver = InverterDriver(vdd=1.8, time_constant=5e-12, initial_output=0.0)
    for _ in range(20):
        driver.step(1.8, 5e-12)
    assert driver.output == pytest.approx(1.8, abs=1e-6)


def test_driver_threshold_at_half_vdd():
    driver = InverterDriver(vdd=1.8, time_constant=5e-12)
    assert driver.target(1.0) == 1.8
    assert driver.target(0.8) == 0.0


def test_inverting_driver():
    driver = InverterDriver(vdd=1.8, time_constant=5e-12, inverting=True)
    assert driver.target(1.8) == 0.0
    assert driver.target(0.0) == 1.8


def test_driver_settle_snaps_output():
    driver = InverterDriver(vdd=1.8, time_constant=5e-12)
    assert driver.settle(1.8) == 1.8
    assert driver.output == 1.8


def test_driver_accumulates_switching_energy():
    driver = InverterDriver(
        vdd=1.8, time_constant=1e-12, load_capacitance=10e-15, initial_output=0.0
    )
    for _ in range(50):
        driver.step(1.8, 1e-12)
    # One full 0 -> VDD transition: C * dV * VDD = 10 fF * 1.8 * 1.8.
    assert driver.switching_energy == pytest.approx(10e-15 * 1.8 * 1.8, rel=1e-3)


def test_driver_rejects_bad_construction():
    with pytest.raises(ConfigurationError):
        InverterDriver(vdd=0.0, time_constant=1e-12)
    with pytest.raises(ConfigurationError):
        InverterDriver(vdd=1.8, time_constant=0.0)
    driver = InverterDriver(vdd=1.8, time_constant=1e-12)
    with pytest.raises(SimulationError):
        driver.step(1.0, 0.0)
