"""Unit and transient tests for the pSRAM bitcell/array (Fig. 5)."""

import pytest

from repro.core.psram import PsramArray, PsramBitcell
from repro.errors import ConfigurationError
from repro.sim.waveform import PulseTrain


def test_both_states_hold_stably(psram_cell):
    """The cross-coupled positive feedback must reinforce both states."""
    for bit in (0, 1):
        psram_cell.set_state(bit)
        assert psram_cell.state == bit
        assert psram_cell.is_hold_stable()


def test_hold_currents_reinforce_state(psram_cell):
    psram_cell.set_state(1)
    current_q, current_qb = psram_cell.hold_node_currents()
    assert current_q > 1e-6  # Q pulled toward VDD with uA margin
    assert current_qb < -1e-6  # QB pulled toward ground


def test_write_one_from_zero(psram_cell):
    psram_cell.set_state(0)
    result = psram_cell.write(1)
    assert result.success
    assert psram_cell.state == 1


def test_write_zero_from_one(psram_cell):
    psram_cell.set_state(1)
    result = psram_cell.write(0)
    assert result.success
    assert psram_cell.state == 0


def test_write_energy_matches_paper(psram_cell):
    """Paper Section IV-A: 0.5 pJ per switching event."""
    psram_cell.set_state(0)
    result = psram_cell.write(1)
    assert result.switch_energy == pytest.approx(0.5e-12, rel=1e-3)


def test_write_flips_inside_the_50ps_pulse(psram_cell):
    """Fig. 5: the storage node crosses mid-rail during the write pulse."""
    psram_cell.set_state(0)
    result = psram_cell.write(1)
    crossings = result.recorder.waveform("Q").crossings(0.9, rising=True)
    assert crossings
    assert crossings[0] < 50e-12


def test_rewrite_same_value_spends_no_switch_energy(psram_cell):
    psram_cell.set_state(1)
    result = psram_cell.write(1)
    assert result.success
    ledger = result.energy.breakdown()
    assert "node/driver switching" not in ledger


def test_hold_transient_retains_state(psram_cell):
    """No write pulses: one full update cycle must not disturb the bit."""
    psram_cell.set_state(1)
    recorder = psram_cell.transient(duration=100e-12)
    assert recorder.waveform("Q").final_value() > 1.7
    assert recorder.waveform("QB").final_value() < 0.1


def test_differential_write_waveforms_recorded(psram_cell):
    psram_cell.set_state(0)
    pulse = PulseTrain().add_pulse(0.0, 50e-12, 1e-3)
    recorder = psram_cell.transient(150e-12, wbl=pulse)
    assert recorder.waveform("WBL").value_at(25e-12) == pytest.approx(1e-3)
    assert recorder.waveform("WBLB").value_at(25e-12) == 0.0


def test_hold_power_ledger(psram_cell):
    """-20 dBm bias / 0.23 wall plug + driver leakage ~ 48.5 uW."""
    total = psram_cell.hold_power_ledger().total
    assert total == pytest.approx(10e-6 / 0.23 + 5e-6, rel=1e-6)


def test_invalid_bit_rejected(psram_cell):
    with pytest.raises(ConfigurationError):
        psram_cell.set_state(2)
    with pytest.raises(ConfigurationError):
        psram_cell.write(-1)


class TestPsramArray:
    def test_word_round_trip(self, tech):
        array = PsramArray(4, 3, tech)
        array.write_word(2, 5)
        assert array.word(2) == 5
        assert array.word_bits(2) == (1, 0, 1)

    def test_write_all_counts_switches(self, tech):
        array = PsramArray(4, 3, tech)
        flips = array.write_all([7, 7, 7, 7])
        assert flips == 12  # every bit 0 -> 1... 3 bits x 4 words
        flips = array.write_all([7, 7, 7, 7])
        assert flips == 0  # rewriting the same data flips nothing

    def test_write_energy_per_switch(self, tech):
        array = PsramArray(2, 3, tech)
        array.write_word(0, 7)  # 3 switches
        assert array.write_energy() == pytest.approx(3 * 0.5e-12, rel=1e-3)

    def test_update_time_at_20ghz(self, tech):
        """Paper: 20 GHz updates -> 16 words stream in 0.8 ns."""
        array = PsramArray(16, 3, tech)
        assert array.update_time() == pytest.approx(16 / 20e9)

    def test_value_range_checked(self, tech):
        array = PsramArray(2, 3, tech)
        with pytest.raises(ConfigurationError):
            array.write_word(0, 8)
        with pytest.raises(ConfigurationError):
            array.write_all([1])

    def test_retention_spot_check(self, tech):
        assert PsramArray(2, 2, tech).check_retention()

    def test_hold_power_scales_with_cells(self, tech):
        small = PsramArray(2, 3, tech).hold_power()
        large = PsramArray(4, 3, tech).hold_power()
        assert large == pytest.approx(2 * small)
