"""Tests for the serving shims and traffic bench (repro.runtime.serving)."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError, PendingFlushError
from repro.ml.convolution import PhotonicConv2d
from repro.runtime.serving import (
    InferenceServer,
    run_cluster_serve_bench,
    run_cnn_serve_bench,
    run_serve_bench,
    synthetic_trace,
)


@pytest.fixture()
def server(tech):
    with pytest.deprecated_call():
        return InferenceServer(rows=4, columns=6, technology=tech,
                               cache_capacity=4, max_batch=16)


def test_native_shape_roundtrip(server, tech):
    rng = np.random.default_rng(1)
    weights = rng.integers(0, 8, (4, 6))
    x = rng.uniform(0.0, 1.0, 6)
    ticket = server.submit(weights, x)
    assert not ticket.done
    assert server.flush() == 1
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(weights)
    assert np.allclose(ticket.estimates, reference.matvec(x).estimates)


def test_smaller_shape_is_zero_padded(server, tech):
    rng = np.random.default_rng(2)
    weights = rng.integers(0, 8, (3, 4))
    x = rng.uniform(0.0, 1.0, 4)
    ticket = server.submit(weights, x)
    server.flush()
    assert ticket.estimates.shape == (3,)
    padded_w = np.zeros((4, 6), dtype=int)
    padded_w[:3, :4] = weights
    padded_x = np.zeros(6)
    padded_x[:4] = x
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(padded_w)
    assert np.allclose(ticket.estimates, reference.matvec(padded_x).estimates[:3])


def test_oversize_shape_routes_to_tiled_grid(server):
    rng = np.random.default_rng(3)
    weights = rng.integers(0, 8, (7, 9))
    inputs = [rng.uniform(0.0, 1.0, 9) for _ in range(3)]
    tickets = [server.submit(weights, x) for x in inputs]
    server.flush()
    stats = server.stats()
    assert stats.tiled_requests == 3
    assert stats.tiled_builds == 1  # one grid build served the batch
    # Tiled traffic is accounted like scheduler traffic: one sample
    # period per input column, energy scaled by the tile count.
    assert stats.tiled_batches == 1 and stats.tiled_samples == 3
    assert stats.analog_time > 0.0 and stats.analog_energy > 0.0
    assert stats.total_energy >= stats.analog_energy
    for ticket, x in zip(tickets, inputs):
        assert ticket.estimates.shape == (7,)
        exact = weights @ x
        assert np.abs(ticket.estimates - exact).max() <= 18.0  # 2 col tiles x 1 bin


def test_tiled_engine_cache_reuse(server):
    rng = np.random.default_rng(4)
    weights = rng.integers(0, 8, (7, 9))
    server.submit(weights, rng.uniform(0.0, 1.0, 9))
    server.flush()
    server.submit(weights, rng.uniform(0.0, 1.0, 9))
    server.flush()
    stats = server.stats()
    assert stats.tiled_builds == 1 and stats.tiled_hits == 1
    assert stats.weight_energy_saved > 0.0
    assert stats.cache_hit_rate > 0.0


def test_tiled_requests_with_distinct_gains_do_not_mix(server):
    rng = np.random.default_rng(14)
    weights = rng.integers(1, 8, (7, 9))
    x = rng.uniform(0.1, 0.3, 9)
    low = server.submit(weights, x, gain=1.0)
    high = server.submit(weights, x, gain=4.0)
    server.flush()
    # The hotter TIA resolves the small dot products onto finer codes;
    # a shared batch would have returned identical estimates.
    assert not np.allclose(low.estimates, high.estimates)
    exact = weights @ x
    assert np.abs(high.estimates - exact).max() <= np.abs(low.estimates - exact).max()


def test_auto_gain_consistent_across_tile_boundary(server):
    """gain='auto' must range-calibrate on both request paths, and the
    default (None) must mean native gain 1.0 on both.  Calibration
    guarantees a tighter quantization envelope (finer code bins), so
    errors must fit the scaled-down bin on each path."""
    rng = np.random.default_rng(16)
    full_scale_dot = server.columns * server.scheduler.core.max_weight
    native_bin = full_scale_dot / server.scheduler.core.row_adcs[0].levels

    small = rng.integers(1, 4, (4, 6))     # fits the tile, leaves range idle
    x = rng.uniform(0.1, 0.3, 6)
    native = server.submit(small, x)
    calibrated = server.submit(small, x, gain="auto")
    server.flush()
    exact = small @ x
    auto_gain = full_scale_dot / int(small.sum(axis=1).max())
    assert auto_gain > 1.0
    assert np.abs(native.estimates - exact).max() <= native_bin
    assert np.abs(calibrated.estimates - exact).max() <= native_bin / auto_gain

    tiled_w = rng.integers(1, 4, (7, 9))
    tx = rng.uniform(0.1, 0.3, 9)
    t_native = server.submit(tiled_w, tx)
    t_auto = server.submit(tiled_w, tx, gain="auto")
    server.flush()
    t_exact = tiled_w @ tx
    # Two column tiles: one native bin each vs the calibrated envelope.
    assert np.abs(t_native.estimates - t_exact).max() <= 2 * native_bin
    tiles = server.tiled_cache.get(server.tiled_cache.keys()[-1])
    auto_bound = tiles.quantization_error_bound()
    assert np.all(auto_bound < 2 * native_bin)
    assert np.abs(t_auto.estimates - t_exact).max() <= auto_bound.max()


def test_tiled_validation_happens_at_submit(server):
    rng = np.random.default_rng(15)
    with pytest.raises(ConfigurationError, match=r"\[0, 7\]"):
        server.submit(np.full((7, 9), 9), rng.uniform(0.0, 1.0, 9))
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        server.submit(rng.integers(0, 8, (7, 9)), np.full(9, 1.5))
    with pytest.raises(ConfigurationError, match="gain"):
        server.submit(rng.integers(0, 8, (7, 9)), np.full(9, 0.5), gain=0.0)
    # Nothing queued: the next flush serves later requests normally.
    good = server.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
    assert server.flush() == 1
    assert good.done


def test_unflushed_ticket_raises(server):
    rng = np.random.default_rng(5)
    native = server.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    tiled = server.submit(rng.integers(0, 8, (9, 9)), rng.uniform(0.0, 1.0, 9))
    for ticket in (native, tiled):
        with pytest.raises(ConfigurationError, match="not flushed"):
            ticket.estimates
        # ... and it is a RuntimeError naming the pending flush, not a
        # silent None (PendingFlushError subclasses both).
        with pytest.raises(RuntimeError, match="flush #1"):
            ticket.estimates
        with pytest.raises(PendingFlushError, match="result\\(\\)"):
            ticket.estimates


def test_submit_validation(server):
    with pytest.raises(ConfigurationError, match="2-D"):
        server.submit(np.ones(4, dtype=int), np.ones(4) * 0.5)
    with pytest.raises(ConfigurationError, match=r"\(3,\)"):
        server.submit(np.ones((4, 6), dtype=int), np.ones(3) * 0.5)


class TestConvRoute:
    @pytest.fixture()
    def conv_server(self, tech):
        with pytest.deprecated_call():
            return InferenceServer(rows=4, columns=9, technology=tech)

    def test_conv_route_matches_runtime_conv_layer(self, conv_server, tech):
        rng = np.random.default_rng(21)
        kernels = rng.normal(0.0, 1.0, (3, 3, 3))
        images = [rng.uniform(0.0, 1.0, (7, 7)) for _ in range(3)]
        tickets = [conv_server.submit_conv(kernels, image) for image in images]
        assert not tickets[0].done
        conv_server.flush()
        core = PhotonicTensorCore(rows=4, columns=9, technology=tech)
        reference = PhotonicConv2d(kernels, core, runtime=True)
        for ticket, image in zip(tickets, images):
            assert ticket.shape == (3, 5, 5)
            np.testing.assert_array_equal(ticket.feature_maps,
                                          reference.forward(image))

    def test_conv_route_stride_and_gain(self, conv_server, tech):
        rng = np.random.default_rng(22)
        kernels = rng.normal(0.0, 1.0, (2, 3, 3))
        image = rng.uniform(0.0, 1.0, (8, 8))
        ticket = conv_server.submit_conv(kernels, image, stride=2, gain=2.0)
        conv_server.flush()
        core = PhotonicTensorCore(rows=4, columns=9, technology=tech)
        reference = PhotonicConv2d(kernels, core, stride=2, gain=2.0, runtime=True)
        np.testing.assert_array_equal(ticket.feature_maps, reference.forward(image))

    def test_repeated_kernel_programs_hit_the_cache(self, conv_server):
        rng = np.random.default_rng(23)
        kernels = rng.normal(0.0, 1.0, (2, 3, 3))
        conv_server.submit_conv(kernels, rng.uniform(0.0, 1.0, (6, 6)))
        conv_server.flush()
        conv_server.submit_conv(kernels, rng.uniform(0.0, 1.0, (6, 6)))
        conv_server.submit_conv(kernels, rng.uniform(0.0, 1.0, (6, 6)))
        conv_server.flush()
        stats = conv_server.stats()
        assert stats.conv_requests == 3
        assert stats.tiled_builds == 1 and stats.tiled_hits == 1
        assert stats.weight_energy_saved > 0.0
        assert stats.conv_patches == 3 * 16
        # Signed kernels: two analog passes per patch column.
        assert stats.tiled_samples == 2 * stats.conv_patches
        assert stats.analog_time > 0.0 and stats.analog_energy > 0.0

    def test_non_negative_bank_pays_single_pass(self, conv_server):
        rng = np.random.default_rng(24)
        kernels = rng.uniform(0.1, 1.0, (2, 3, 3))  # all positive taps
        conv_server.submit_conv(kernels, rng.uniform(0.0, 1.0, (6, 6)))
        conv_server.flush()
        stats = conv_server.stats()
        assert stats.tiled_samples == stats.conv_patches  # one pass each

    def test_conv_requests_count_into_totals(self, conv_server):
        rng = np.random.default_rng(25)
        conv_server.submit(rng.integers(0, 8, (4, 9)), rng.uniform(0.0, 1.0, 9))
        conv_server.submit_conv(rng.normal(0.0, 1.0, (2, 3, 3)),
                                rng.uniform(0.0, 1.0, (5, 5)))
        conv_server.flush()
        assert conv_server.stats().requests == 2

    def test_conv_validation(self, conv_server):
        rng = np.random.default_rng(26)
        kernels = rng.normal(0.0, 1.0, (2, 3, 3))
        image = rng.uniform(0.0, 1.0, (6, 6))
        with pytest.raises(ConfigurationError, match="kernels"):
            conv_server.submit_conv(np.ones((2, 3, 4)), image)
        with pytest.raises(ConfigurationError, match="non-negative"):
            conv_server.submit_conv(kernels, -image)
        with pytest.raises(ConfigurationError, match="numeric gain"):
            conv_server.submit_conv(kernels, image, gain="auto")
        with pytest.raises(ConfigurationError, match="gain"):
            conv_server.submit_conv(kernels, image, gain=0.0)
        with pytest.raises(ConfigurationError, match=r"\(2, H, W\)"):
            conv_server.submit_conv(np.ones((2, 2, 3, 3)), image)
        ticket = conv_server.submit_conv(kernels, image)
        with pytest.raises(ConfigurationError, match="not flushed"):
            ticket.feature_maps
        assert conv_server.flush() == 1 and ticket.done


class TestShimWarnOnce:
    """Each deprecation shim announces itself exactly once per process
    (module-level registry, not the warnings-module filters) while
    still round-tripping every result through the session."""

    def test_shims_warn_exactly_once_per_process(self, tech):
        import warnings

        rng = np.random.default_rng(61)
        with warnings.catch_warnings(record=True) as records:
            warnings.simplefilter("always")   # disarm filter-level dedup
            first = InferenceServer(rows=4, columns=6, technology=tech)
            InferenceServer(rows=4, columns=6, technology=tech)
            weights = rng.integers(0, 8, (4, 6))
            tickets = [first.submit(weights, rng.uniform(0.0, 1.0, 6))
                       for _ in range(3)]
            kernels = rng.normal(0.0, 1.0, (2, 3, 3))
            conv_tickets = [
                first.submit_conv(kernels, rng.uniform(0.0, 1.0, (5, 5)))
                for _ in range(2)
            ]
            first.flush()
        messages = [str(record.message) for record in records
                    if issubclass(record.category, DeprecationWarning)]
        for shim in ("InferenceServer", "ServerTicket", "ConvTicket"):
            assert sum(shim in message for message in messages) == 1, shim
        # ... and the shim traffic still resolves through the session.
        for ticket in tickets:
            np.testing.assert_array_equal(ticket.estimates,
                                          ticket.future.value)
        for ticket in conv_tickets:
            assert ticket.feature_maps.shape == (2, 3, 3)
            np.testing.assert_array_equal(ticket.feature_maps,
                                          ticket.future.value)

    def test_each_test_sees_a_fresh_registry(self, tech):
        # The autouse fixture re-arms the once-per-process registry, so
        # deprecated_call works in every test independently.
        with pytest.deprecated_call():
            InferenceServer(rows=4, columns=6, technology=tech)


class TestSessionShims:
    """The legacy surface must stay alive as thin shims over the one
    front door (repro.api.PhotonicSession)."""

    def test_inference_server_shims_onto_a_session(self, tech):
        from repro.api import FlushPolicy, PhotonicSession

        with pytest.deprecated_call():
            server = InferenceServer(rows=4, columns=6, technology=tech)
        assert isinstance(server.session, PhotonicSession)
        # Delegated surfaces are the session's own objects, not copies.
        assert server.scheduler is server.session.scheduler
        assert server.tiled_cache is server.session.tiled_cache
        assert server.technology is server.session.technology
        assert (server.rows, server.columns) == (4, 6)
        # Legacy semantics: nothing flushes until flush() is called.
        assert server.session.flush_policy == FlushPolicy.explicit()

    def test_server_ticket_wraps_a_future(self, server):
        from repro.api import Future

        rng = np.random.default_rng(51)
        ticket = server.submit(rng.integers(0, 8, (4, 6)),
                               rng.uniform(0.0, 1.0, 6))
        assert isinstance(ticket.future, Future)
        server.flush()
        np.testing.assert_array_equal(ticket.estimates, ticket.future.value)

    def test_conv_ticket_wraps_a_future(self, server, tech):
        from repro.api import Future

        rng = np.random.default_rng(52)
        ticket = server.submit_conv(rng.normal(0.0, 1.0, (2, 3, 3)),
                                    rng.uniform(0.0, 1.0, (5, 5)))
        assert isinstance(ticket.future, Future)
        assert ticket.shape == (2, 3, 3)
        server.flush()
        assert ticket.done
        np.testing.assert_array_equal(ticket.feature_maps, ticket.future.value)

    def test_shim_stats_equal_session_stats(self, server):
        rng = np.random.default_rng(53)
        server.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
        server.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
        server.flush()
        shim = server.stats()
        direct = server.session.server_stats()
        assert shim.requests == direct.requests == 2
        assert shim.total_energy == direct.total_energy


def test_run_cnn_serve_bench_smoke(tech, capsys):
    summary = run_cnn_serve_bench(images=12, flush_every=4, seed=5)
    output = capsys.readouterr().out
    assert "images/s" in output and "hit rate" in output
    assert summary["images"] == 12
    assert summary["patches"] == 12 * 36  # 8x8 glyphs, 3x3 kernels
    assert summary["cache_misses"] == 1 and summary["cache_hits"] == 2
    assert summary["weight_energy_saved_pj"] > 0.0
    assert summary["images_per_s"] > 0.0


def test_synthetic_trace_is_deterministic():
    first = list(synthetic_trace(requests=20, rows=4, columns=4, seed=9))
    second = list(synthetic_trace(requests=20, rows=4, columns=4, seed=9))
    assert len(first) == 20
    for (ta, wa, xa), (tb, wb, xb) in zip(first, second):
        assert ta == tb
        assert np.array_equal(wa, wb)
        assert np.array_equal(xa, xb)
    shapes = {w.shape for _, w, _ in first}
    assert len(shapes) > 1  # mixed tenant shapes


def test_run_cluster_serve_bench_smoke(tech, capsys, tmp_path):
    import json

    json_path = tmp_path / "BENCH_cluster.json"
    summary = run_cluster_serve_bench(requests=60, cores_sweep=(1, 2),
                                      rows=4, columns=6, flush_every=8,
                                      seed=5, json_path=json_path)
    output = capsys.readouterr().out
    assert "cluster serve-bench" in output and "routing" in output
    assert [entry["cores"] for entry in summary["sweep"]] == [1, 2]
    for entry in summary["sweep"]:
        assert entry["throughput_per_s"] > 0.0
        assert set(entry["policies"]) == {"round_robin", "least_loaded",
                                          "cache_affinity"}
    # The acceptance property: on the skewed trace, affinity routing
    # beats round-robin's aggregate hit rate on the 2-core fleet.
    multi = summary["sweep"][1]["policies"]
    assert (multi["cache_affinity"]["cache_hit_rate"]
            > multi["round_robin"]["cache_hit_rate"])
    assert json.loads(json_path.read_text())["requests"] == 60


def test_run_cluster_serve_bench_validation(tech):
    with pytest.raises(ConfigurationError, match="flush interval"):
        run_cluster_serve_bench(requests=4, flush_every=0)
    with pytest.raises(ConfigurationError, match="cores_sweep"):
        run_cluster_serve_bench(requests=4, cores_sweep=())
    with pytest.raises(ConfigurationError, match="cores_sweep"):
        run_cluster_serve_bench(requests=4, cores_sweep=(1, 0))


def test_run_serve_bench_smoke(tech, capsys):
    summary = run_serve_bench(requests=40, rows=4, columns=4, flush_every=8,
                              cache_capacity=3, seed=7)
    output = capsys.readouterr().out
    assert "inferences/s" in output
    assert summary["requests"] == 40
    assert summary["throughput_per_s"] > 0.0
    assert 0.0 < summary["batch_fill"] <= 1.0
    assert summary["cache_hits"] + summary["cache_misses"] > 0
    assert summary["weight_energy_saved_pj"] > 0.0
