"""Tests for the serving facade and traffic bench (repro.runtime.serving)."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.runtime.serving import InferenceServer, run_serve_bench, synthetic_trace


@pytest.fixture()
def server(tech):
    return InferenceServer(rows=4, columns=6, technology=tech,
                           cache_capacity=4, max_batch=16)


def test_native_shape_roundtrip(server, tech):
    rng = np.random.default_rng(1)
    weights = rng.integers(0, 8, (4, 6))
    x = rng.uniform(0.0, 1.0, 6)
    ticket = server.submit(weights, x)
    assert not ticket.done
    assert server.flush() == 1
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(weights)
    assert np.allclose(ticket.estimates, reference.matvec(x).estimates)


def test_smaller_shape_is_zero_padded(server, tech):
    rng = np.random.default_rng(2)
    weights = rng.integers(0, 8, (3, 4))
    x = rng.uniform(0.0, 1.0, 4)
    ticket = server.submit(weights, x)
    server.flush()
    assert ticket.estimates.shape == (3,)
    padded_w = np.zeros((4, 6), dtype=int)
    padded_w[:3, :4] = weights
    padded_x = np.zeros(6)
    padded_x[:4] = x
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(padded_w)
    assert np.allclose(ticket.estimates, reference.matvec(padded_x).estimates[:3])


def test_oversize_shape_routes_to_tiled_grid(server):
    rng = np.random.default_rng(3)
    weights = rng.integers(0, 8, (7, 9))
    inputs = [rng.uniform(0.0, 1.0, 9) for _ in range(3)]
    tickets = [server.submit(weights, x) for x in inputs]
    server.flush()
    stats = server.stats()
    assert stats.tiled_requests == 3
    assert stats.tiled_builds == 1  # one grid build served the batch
    # Tiled traffic is accounted like scheduler traffic: one sample
    # period per input column, energy scaled by the tile count.
    assert stats.tiled_batches == 1 and stats.tiled_samples == 3
    assert stats.analog_time > 0.0 and stats.analog_energy > 0.0
    assert stats.total_energy >= stats.analog_energy
    for ticket, x in zip(tickets, inputs):
        assert ticket.estimates.shape == (7,)
        exact = weights @ x
        assert np.abs(ticket.estimates - exact).max() <= 18.0  # 2 col tiles x 1 bin


def test_tiled_engine_cache_reuse(server):
    rng = np.random.default_rng(4)
    weights = rng.integers(0, 8, (7, 9))
    server.submit(weights, rng.uniform(0.0, 1.0, 9))
    server.flush()
    server.submit(weights, rng.uniform(0.0, 1.0, 9))
    server.flush()
    stats = server.stats()
    assert stats.tiled_builds == 1 and stats.tiled_hits == 1
    assert stats.weight_energy_saved > 0.0
    assert stats.cache_hit_rate > 0.0


def test_tiled_requests_with_distinct_gains_do_not_mix(server):
    rng = np.random.default_rng(14)
    weights = rng.integers(1, 8, (7, 9))
    x = rng.uniform(0.1, 0.3, 9)
    low = server.submit(weights, x, gain=1.0)
    high = server.submit(weights, x, gain=4.0)
    server.flush()
    # The hotter TIA resolves the small dot products onto finer codes;
    # a shared batch would have returned identical estimates.
    assert not np.allclose(low.estimates, high.estimates)
    exact = weights @ x
    assert np.abs(high.estimates - exact).max() <= np.abs(low.estimates - exact).max()


def test_auto_gain_consistent_across_tile_boundary(server):
    """gain='auto' must range-calibrate on both request paths, and the
    default (None) must mean native gain 1.0 on both.  Calibration
    guarantees a tighter quantization envelope (finer code bins), so
    errors must fit the scaled-down bin on each path."""
    rng = np.random.default_rng(16)
    full_scale_dot = server.columns * server.scheduler.core.max_weight
    native_bin = full_scale_dot / server.scheduler.core.row_adcs[0].levels

    small = rng.integers(1, 4, (4, 6))     # fits the tile, leaves range idle
    x = rng.uniform(0.1, 0.3, 6)
    native = server.submit(small, x)
    calibrated = server.submit(small, x, gain="auto")
    server.flush()
    exact = small @ x
    auto_gain = full_scale_dot / int(small.sum(axis=1).max())
    assert auto_gain > 1.0
    assert np.abs(native.estimates - exact).max() <= native_bin
    assert np.abs(calibrated.estimates - exact).max() <= native_bin / auto_gain

    tiled_w = rng.integers(1, 4, (7, 9))
    tx = rng.uniform(0.1, 0.3, 9)
    t_native = server.submit(tiled_w, tx)
    t_auto = server.submit(tiled_w, tx, gain="auto")
    server.flush()
    t_exact = tiled_w @ tx
    # Two column tiles: one native bin each vs the calibrated envelope.
    assert np.abs(t_native.estimates - t_exact).max() <= 2 * native_bin
    tiles = server.tiled_cache.get(server.tiled_cache.keys()[-1])
    auto_bound = tiles.quantization_error_bound()
    assert np.all(auto_bound < 2 * native_bin)
    assert np.abs(t_auto.estimates - t_exact).max() <= auto_bound.max()


def test_tiled_validation_happens_at_submit(server):
    rng = np.random.default_rng(15)
    with pytest.raises(ConfigurationError, match=r"\[0, 7\]"):
        server.submit(np.full((7, 9), 9), rng.uniform(0.0, 1.0, 9))
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        server.submit(rng.integers(0, 8, (7, 9)), np.full(9, 1.5))
    with pytest.raises(ConfigurationError, match="gain"):
        server.submit(rng.integers(0, 8, (7, 9)), np.full(9, 0.5), gain=0.0)
    # Nothing queued: the next flush serves later requests normally.
    good = server.submit(rng.integers(0, 8, (7, 9)), rng.uniform(0.0, 1.0, 9))
    assert server.flush() == 1
    assert good.done


def test_unflushed_ticket_raises(server):
    rng = np.random.default_rng(5)
    native = server.submit(rng.integers(0, 8, (4, 6)), rng.uniform(0.0, 1.0, 6))
    tiled = server.submit(rng.integers(0, 8, (9, 9)), rng.uniform(0.0, 1.0, 9))
    for ticket in (native, tiled):
        with pytest.raises(ConfigurationError, match="not flushed"):
            ticket.estimates


def test_submit_validation(server):
    with pytest.raises(ConfigurationError, match="2-D"):
        server.submit(np.ones(4, dtype=int), np.ones(4) * 0.5)
    with pytest.raises(ConfigurationError, match=r"\(3,\)"):
        server.submit(np.ones((4, 6), dtype=int), np.ones(3) * 0.5)


def test_synthetic_trace_is_deterministic():
    first = list(synthetic_trace(requests=20, rows=4, columns=4, seed=9))
    second = list(synthetic_trace(requests=20, rows=4, columns=4, seed=9))
    assert len(first) == 20
    for (ta, wa, xa), (tb, wb, xb) in zip(first, second):
        assert ta == tb
        assert np.array_equal(wa, wb)
        assert np.array_equal(xa, xb)
    shapes = {w.shape for _, w, _ in first}
    assert len(shapes) > 1  # mixed tenant shapes


def test_run_serve_bench_smoke(tech, capsys):
    summary = run_serve_bench(requests=40, rows=4, columns=4, flush_every=8,
                              cache_capacity=3, seed=7)
    output = capsys.readouterr().out
    assert "inferences/s" in output
    assert summary["requests"] == 40
    assert summary["throughput_per_s"] > 0.0
    assert 0.0 < summary["batch_fill"] <= 1.0
    assert summary["cache_hits"] + summary["cache_misses"] > 0
    assert summary["weight_energy_saved_pj"] > 0.0
