"""Tests for batching and weight-program caching (repro.runtime.scheduler)."""

import numpy as np
import pytest

from repro.core.tensor_core import PhotonicTensorCore
from repro.errors import ConfigurationError
from repro.runtime.scheduler import BatchScheduler, WeightProgramCache


@pytest.fixture()
def scheduler(tech):
    return BatchScheduler(rows=4, columns=6, technology=tech,
                          cache_capacity=2, max_batch=8)


def _weights(seed):
    return np.random.default_rng(seed).integers(0, 8, (4, 6))


def test_lru_eviction_order():
    cache = WeightProgramCache(capacity=2)
    cache.put(b"a", "A")
    cache.put(b"b", "B")
    assert cache.get(b"a") == "A"          # refresh a: order is now [b, a]
    evicted = cache.put(b"c", "C")
    assert evicted == "B"
    assert cache.keys() == [b"a", b"c"]
    assert cache.get(b"b") is None
    assert cache.evictions == 1
    assert cache.hits == 1 and cache.misses == 1


def test_requests_coalesce_into_batches(scheduler):
    rng = np.random.default_rng(0)
    w1, w2 = _weights(1), _weights(2)
    for _ in range(5):
        scheduler.submit(w1, rng.uniform(0.0, 1.0, 6))
    for _ in range(3):
        scheduler.submit(w2, rng.uniform(0.0, 1.0, 6))
    assert scheduler.pending == 8
    assert scheduler.flush() == 8
    stats = scheduler.stats()
    # One batch per weight program, not one evaluation per request.
    assert stats.batches == 2
    assert stats.cache_misses == 2 and stats.cache_hits == 0
    assert scheduler.pending == 0


def test_max_batch_chunks_large_groups(scheduler):
    rng = np.random.default_rng(4)
    w = _weights(3)
    for _ in range(20):
        scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    stats = scheduler.stats()
    assert stats.batches == 3  # 8 + 8 + 4
    assert stats.samples == 20
    assert 0.0 < stats.batch_fill <= 1.0


def test_results_match_direct_device_evaluation(scheduler, tech):
    rng = np.random.default_rng(6)
    w = _weights(5)
    inputs = [rng.uniform(0.0, 1.0, 6) for _ in range(4)]
    tickets = [scheduler.submit(w, x, gain=1.5) for x in inputs]
    assert not any(ticket.done for ticket in tickets)
    scheduler.flush()
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(w)
    for ticket, x in zip(tickets, inputs):
        assert ticket.done
        expected = reference.matvec(x, gain=1.5)
        assert np.array_equal(ticket.result.codes, expected.codes)
        assert np.allclose(ticket.result.estimates, expected.estimates)


def test_cache_hits_skip_weight_restreaming(scheduler):
    rng = np.random.default_rng(8)
    w = _weights(7)
    scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    first = scheduler.stats()
    assert first.weight_energy_spent > 0.0
    assert first.weight_energy_saved == 0.0

    scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    second = scheduler.stats()
    assert second.cache_hits == 1
    # The hit spends nothing new and is credited with the avoided load.
    assert second.weight_energy_spent == first.weight_energy_spent
    assert second.weight_energy_saved == pytest.approx(first.weight_energy_spent)
    assert second.weight_time_saved > 0.0


def test_distinct_gains_do_not_share_batches(scheduler):
    rng = np.random.default_rng(9)
    w = _weights(11)
    x = rng.uniform(0.0, 1.0, 6)
    low = scheduler.submit(w, x, gain=1.0)
    high = scheduler.submit(w, x, gain=2.0)
    scheduler.flush()
    stats = scheduler.stats()
    assert stats.batches == 2
    # Same program though: one miss, one hit.
    assert stats.cache_misses == 1 and stats.cache_hits == 1
    assert np.all(high.result.codes >= low.result.codes)


def test_eviction_makes_program_recompile(scheduler):
    rng = np.random.default_rng(10)
    programs = [_weights(seed) for seed in (21, 22, 23)]
    for w in programs:  # capacity is 2: the first program gets evicted
        scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
        scheduler.flush()
    assert scheduler.stats().cache_evictions == 1
    scheduler.submit(programs[0], rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    stats = scheduler.stats()
    assert stats.cache_misses == 4 and stats.cache_hits == 0


def test_cache_hit_rate_math():
    cache = WeightProgramCache(capacity=1)
    assert cache.hit_rate == 0.0
    cache.put(b"a", "A")
    assert cache.get(b"a") == "A"
    assert cache.get(b"b") is None
    assert cache.get(b"a") == "A"
    assert cache.hit_rate == pytest.approx(2 / 3)
    assert cache.hits == 2 and cache.misses == 1


def test_evicted_program_recompiles_and_respends_energy(scheduler):
    """Evict -> resubmit must pay the pSRAM streaming again: the energy
    ledger only credits true cache hits, and the hit-rate math counts
    the post-eviction recompile as a miss."""
    rng = np.random.default_rng(41)
    a, b, c = (_weights(seed) for seed in (41, 42, 43))

    scheduler.submit(a, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    first_load = scheduler.stats().weight_energy_spent
    assert first_load > 0.0

    scheduler.submit(a, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    hit = scheduler.stats()
    assert hit.cache_hits == 1
    assert hit.weight_energy_spent == first_load            # hit spends nothing
    assert hit.weight_energy_saved == pytest.approx(first_load)

    # Capacity is 2: loading b then c evicts a (LRU).
    for w in (b, c):
        scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
        scheduler.flush()
    assert scheduler.stats().cache_evictions == 1
    spent_before_resubmit = scheduler.stats().weight_energy_spent

    scheduler.submit(a, rng.uniform(0.0, 1.0, 6))           # recompile a
    scheduler.flush()
    stats = scheduler.stats()
    assert stats.cache_misses == 4 and stats.cache_hits == 1
    assert stats.cache_evictions == 2                       # re-adding a evicts again
    # The energy is spent *again* — eviction really costs a reload.
    assert stats.weight_energy_spent > spent_before_resubmit
    # Saved energy is untouched by the recompile (no new hit).
    assert stats.weight_energy_saved == pytest.approx(first_load)
    # Hit-rate math: 1 hit over 5 lookups, on both ledgers.
    assert stats.cache_hit_rate == pytest.approx(1 / 5)
    assert scheduler.cache.hit_rate == pytest.approx(1 / 5)


def test_analog_accounting_uses_performance_model(scheduler):
    rng = np.random.default_rng(12)
    w = _weights(13)
    for _ in range(3):
        scheduler.submit(w, rng.uniform(0.0, 1.0, 6))
    scheduler.flush()
    stats = scheduler.stats()
    period = 1.0 / scheduler.performance.sample_rate
    assert stats.analog_time == pytest.approx(3 * period)
    assert stats.analog_energy == pytest.approx(
        3 * period * scheduler.performance.total_power
    )
    assert stats.total_latency > stats.analog_time  # includes weight streaming
    assert stats.total_energy > stats.analog_energy


def test_submit_validation(scheduler):
    good = _weights(14)
    with pytest.raises(ConfigurationError, match=r"\(2, 2\)"):
        scheduler.submit(np.zeros((2, 2), dtype=int), np.ones(6) * 0.5)
    with pytest.raises(ConfigurationError, match=r"\[0, 7\]"):
        scheduler.submit(np.full((4, 6), 9), np.ones(6) * 0.5)
    with pytest.raises(ConfigurationError, match=r"\(3,\)"):
        scheduler.submit(good, np.ones(3) * 0.5)
    with pytest.raises(ConfigurationError, match=r"\[0, 1\]"):
        scheduler.submit(good, np.ones(6) * 1.5)
    with pytest.raises(ConfigurationError, match="gain"):
        scheduler.submit(good, np.ones(6) * 0.5, gain=-1.0)


def test_submitted_arrays_are_snapshotted(scheduler, tech):
    """Mutating the caller's arrays between submit and flush must not
    poison the program cache or the queued inputs."""
    weights = np.ones((4, 6), dtype=int)
    x = np.full(6, 0.5)
    ticket = scheduler.submit(weights, x)
    weights[:] = 7  # caller reuses its buffers
    x[:] = 0.0
    scheduler.flush()
    reference = PhotonicTensorCore(rows=4, columns=6, technology=tech)
    reference.load_weight_matrix(np.ones((4, 6), dtype=int))
    expected = reference.matvec(np.full(6, 0.5))
    assert np.array_equal(ticket.result.codes, expected.codes)
    # A later all-ones submit must hit a program compiled from ones.
    clean = scheduler.submit(np.ones((4, 6), dtype=int), np.full(6, 0.5))
    scheduler.flush()
    assert np.array_equal(clean.result.codes, expected.codes)
    assert scheduler.stats().cache_hits == 1


def test_stats_snapshot_is_detached(scheduler):
    snapshot = scheduler.stats()
    snapshot.requests = 999
    assert scheduler.stats().requests == 0


def test_cache_capacity_validation():
    with pytest.raises(ConfigurationError):
        WeightProgramCache(capacity=0)
    with pytest.raises(ConfigurationError):
        BatchScheduler(rows=2, columns=2, max_batch=0)
