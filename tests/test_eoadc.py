"""Static tests for the 1-hot electro-optic ADC (Figs. 8 and 10)."""

import numpy as np
import pytest

from repro.core.eoadc import EoAdc, ShiftAddEoAdc, TimeInterleavedEoAdc
from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    is_monotonic,
    missing_codes,
    transfer_function,
)
from repro.errors import ConfigurationError, ConversionError


def test_paper_code_points(ideal_adc):
    """Fig. 9's static codes: 0.72 V -> 001, 3.3 V -> 110."""
    assert ideal_adc.convert(0.72) == 1
    assert ideal_adc.convert(3.3) == 6


def test_boundary_input_activates_two_adjacent_channels(ideal_adc):
    """Fig. 9: V_IN = 2.0 V fires B4 and B5; ceiling resolves to 100."""
    active = [i for i, fired in enumerate(ideal_adc.activations(2.0)) if fired]
    assert active == [3, 4]
    assert ideal_adc.convert(2.0) == 4


def test_one_hot_in_bin_interiors(ideal_adc):
    """Away from bin edges exactly one thresholding block fires."""
    for code in range(8):
        center = (code + 0.5) * 0.5
        active = [i for i, fired in enumerate(ideal_adc.activations(center)) if fired]
        assert active == [code]


def test_full_scale_is_4v(ideal_adc):
    assert ideal_adc.spec.full_scale_voltage == pytest.approx(4.0)
    assert ideal_adc.lsb == pytest.approx(0.5)


def test_out_of_range_raises(ideal_adc):
    with pytest.raises(ConversionError):
        ideal_adc.convert(-0.1)
    with pytest.raises(ConversionError):
        ideal_adc.convert(4.0)
    assert ideal_adc.convert_clamped(4.7) == 7
    assert ideal_adc.convert_clamped(-0.5) == 0


def test_monotonic_transfer_with_no_missing_codes(trimmed_adc):
    """Fig. 10: the trimmed converter keeps all 8 codes, monotonic."""
    voltages, codes = transfer_function(trimmed_adc.convert, 0.0, 4.0 - 1e-6, 2001)
    assert is_monotonic(codes)
    assert missing_codes(codes, trimmed_adc.levels) == []


def test_dnl_within_half_lsb(trimmed_adc):
    """Fig. 10: non-zero DNL texture but no -1 LSB (no missing code)."""
    voltages, codes = transfer_function(trimmed_adc.convert, 0.0, 4.0 - 1e-6, 4001)
    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, trimmed_adc.lsb, trimmed_adc.levels)
    assert np.max(np.abs(dnl)) < 0.5
    assert np.any(np.abs(dnl) > 0.01)  # visibly non-ideal, as in the paper


def test_ideal_trim_transitions_near_bin_edges(ideal_adc):
    voltages, codes = transfer_function(ideal_adc.convert, 0.0, 4.0 - 1e-6, 8001)
    transitions = code_transitions(voltages, codes)
    for code in range(1, 8):
        # Transitions land ~6.6 mV below each bin edge (window overlap).
        assert transitions[code] == pytest.approx(code * 0.5 - 6.6e-3, abs=3e-3)


def test_thru_powers_one_notch(ideal_adc):
    """Fig. 8: at a bin center exactly one ring's thru power dips."""
    powers = ideal_adc.thru_powers(1.25)
    below = powers < ideal_adc.thresholders[0].reference_power
    assert below.sum() == 1
    assert below[2]  # third ring covers 1.0-1.5 V


def test_power_and_energy_match_paper(trimmed_adc):
    """7.58 mW optical + 11 mW electrical, 2.32 pJ/conv at 8 GS/s."""
    ledger = trimmed_adc.power_ledger()
    assert ledger.total_for("optical") == pytest.approx(7.58e-3, rel=2e-3)
    assert ledger.total_for("electrical") == pytest.approx(11e-3, rel=1e-3)
    assert trimmed_adc.energy_per_conversion == pytest.approx(2.32e-12, rel=2e-3)
    assert trimmed_adc.sample_rate == pytest.approx(8e9)


def test_no_tia_variant_matches_paper_ablation(tech):
    """416.7 MS/s and 58% electrical-power saving without TIA/amps."""
    adc = EoAdc(tech, use_read_chain=False)
    assert adc.sample_rate == pytest.approx(416.7e6)
    electrical = adc.power_ledger().total_for("electrical")
    assert electrical == pytest.approx(11e-3 * 0.42, rel=1e-3)


def test_strict_mode_raises_in_dead_zone(tech):
    adc = EoAdc(tech)  # trimmed: small dead zones exist near some edges
    voltages = np.linspace(0.0, 3.999, 2001)
    saw_dead_zone = False
    for v in voltages:
        try:
            adc.convert(float(v), strict=True)
        except ConversionError:
            saw_dead_zone = True
            break
    assert saw_dead_zone


def test_custom_bit_depth_designs_reference_power(tech):
    adc4 = EoAdc(tech, bits=4)
    assert adc4.levels == 16
    assert adc4.lsb == pytest.approx(0.25)
    # The window rule shrinks the reference with the LSB.
    assert adc4.thresholders[0].reference_power < 18e-6
    ramp_codes = [adc4.convert(v) for v in np.linspace(0.01, 3.99, 400)]
    assert is_monotonic(ramp_codes)


def test_trim_error_shape_validated(tech):
    with pytest.raises(ConfigurationError):
        EoAdc(tech, trim_errors=np.zeros(4))


class TestTimeInterleaved:
    def test_rate_and_power_scale_with_lanes(self, tech):
        ti = TimeInterleavedEoAdc(lanes=2, technology=tech)
        single = EoAdc(tech)
        assert ti.sample_rate == pytest.approx(2 * single.sample_rate)
        assert ti.total_power == pytest.approx(2 * single.total_power, rel=1e-6)
        # Energy per conversion unchanged to first order.
        assert ti.energy_per_conversion == pytest.approx(
            single.energy_per_conversion, rel=1e-6
        )

    def test_stream_conversion_round_robin(self, tech):
        ti = TimeInterleavedEoAdc(lanes=2, technology=tech, offset_sigma=0.0, skew_sigma=0.0)
        codes = ti.convert_stream(lambda t: 1.25, count=8)
        assert codes == [2] * 8

    def test_mismatch_produces_code_errors(self, tech):
        ti = TimeInterleavedEoAdc(
            lanes=4, technology=tech, offset_sigma=0.3, skew_sigma=0.0, seed=3
        )
        codes = ti.convert_stream(lambda t: 1.25, count=16)
        assert len(set(codes)) > 1  # lanes disagree: the paper's objection

    def test_needs_two_lanes(self, tech):
        with pytest.raises(ConfigurationError):
            TimeInterleavedEoAdc(lanes=1, technology=tech)


class TestShiftAdd:
    def test_doubles_resolution(self, tech):
        cascade = ShiftAddEoAdc(tech)
        assert cascade.bits == 6
        assert cascade.levels == 64
        assert cascade.lsb == pytest.approx(4.0 / 64)

    def test_codes_track_fine_ramp(self, tech):
        cascade = ShiftAddEoAdc(tech)
        voltages = np.linspace(0.05, 3.95, 40)
        codes = [cascade.convert(float(v)) for v in voltages]
        ideal = [int(v / cascade.lsb) for v in voltages]
        errors = np.abs(np.array(codes) - np.array(ideal))
        # Within a couple of fine LSBs given trim residuals.
        assert np.max(errors) <= 3

    def test_gain_error_degrades_accuracy(self, tech):
        good = ShiftAddEoAdc(tech, gain_error=0.0)
        bad = ShiftAddEoAdc(tech, gain_error=0.2)
        voltages = np.linspace(0.05, 3.95, 40)
        ideal = np.array([int(v / good.lsb) for v in voltages])
        err_good = np.abs([good.convert(float(v)) for v in voltages] - ideal).max()
        err_bad = np.abs([bad.convert(float(v)) for v in voltages] - ideal).max()
        assert err_bad >= err_good

    def test_pipelined_rate_follows_single_stage(self, tech):
        cascade = ShiftAddEoAdc(tech)
        assert cascade.sample_rate == pytest.approx(8e9)
        assert cascade.total_power == pytest.approx(2 * 18.58e-3, rel=2e-3)
