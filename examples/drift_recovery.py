"""Staying calibrated: drift injection, probe monitoring, recalibration.

A compiled serving stack is only as good as its calibration constants:
MRR resonances wander with temperature, the comb laser ages, TIA gains
droop and the eoADC's comparators accumulate offset.  This example
injects all four drift processes into live sessions and shows the
three rungs of the `repro.health` ladder:

1. an *unmonitored* session silently serving wrong codes,
2. a session with a ``HealthPolicy`` probing itself and recalibrating
   back to bit-for-bit agreement with its compile-time golden codes,
3. a 2-core cluster draining a drifting core out of rotation while the
   other core absorbs the traffic.
"""

import numpy as np

from repro import (
    ComparatorOffsetAging,
    FlushPolicy,
    HealthPolicy,
    LaserPowerDecay,
    PhotonicCluster,
    PhotonicSession,
    ThermalDetuning,
    TiaGainDrift,
)

DRIFT = (
    ThermalDetuning(amplitude_kelvin=0.35, period_s=45.0),
    LaserPowerDecay(rate_per_s=1e-3),
    TiaGainDrift(drift_per_s=-8e-4),
    ComparatorOffsetAging(volts_per_inference=2e-4, saturation_volts=0.45),
)

rng = np.random.default_rng(7)
weights = rng.integers(0, 8, (8, 8))


def serve_minute(session):
    """One modelled minute of traffic: requests 0.5 s apart."""
    for _ in range(120):
        session.age(0.5)
        session.submit(weights, rng.uniform(0.0, 1.0, 8))
    session.flush()


# -- 1. unmonitored: the drift is invisible until you look ----------------
unmonitored = PhotonicSession(
    grid=(8, 8), flush_policy=FlushPolicy.max_batch(16), drift=DRIFT
)
serve_minute(unmonitored)
after = unmonitored.check_health()
print(f"unmonitored after 60 s: {after.code_error_rate:.0%} probe code-error "
      f"rate, ENOB loss {after.enob_loss:.2f} bits")
print(f"blame: {after.dominant_stage} "
      f"({', '.join(f'{k} {v:.0%}' for k, v in after.attribution.items())})")

# -- 2. monitored: probe every flush, recalibrate past 5% -----------------
monitored = PhotonicSession(
    grid=(8, 8),
    flush_policy=FlushPolicy.max_batch(16),
    drift=DRIFT,
    health_policy=HealthPolicy.auto(threshold=0.05),
)
serve_minute(monitored)
report = monitored.report()
checks = monitored.health_history
recovered = [c for c in checks if c.recalibrated]
print(f"\nmonitored after 60 s : {report.recalibrations} recalibrations over "
      f"{report.probe_runs} probe runs")
print(f"post-trim checks bit-for-bit healthy: "
      f"{all(c.healthy for c in recovered)}")
print(f"calibration overhead : {report.calibration_time * 1e6:.2f} us, "
      f"{report.calibration_energy * 1e9:.2f} nJ "
      f"(serving: {report.total_latency * 1e6:.2f} us, "
      f"{report.total_energy * 1e9:.2f} nJ)")

# -- 3. fleet maintenance: drain, recalibrate, restore --------------------
cluster = PhotonicCluster(
    cores=2,
    grid=(8, 8),
    flush_policy=FlushPolicy.max_batch(16),
    drift=DRIFT,
    # Monitor-only: the fleet probes on demand but recalibration stays
    # in our hands, so the drain/restore cycle below is visible.
    health_policy=HealthPolicy.monitor_only(probe_every=1000),
)
for _ in range(32):
    cluster.age(1.0)
    cluster.submit(weights, rng.uniform(0.0, 1.0, 8))
cluster.flush()

cluster.drain(0)                      # core 0 leaves the rotation
absorbed = [cluster.submit(weights, rng.uniform(0.0, 1.0, 8)) for _ in range(8)]
cluster.flush()
print(f"\ncore 0 drained; core 1 absorbed "
      f"{sum(f.done for f in absorbed)}/8 requests while it was out")
verification = cluster.recalibrate_core(0)   # re-trim the drained core
cluster.restore(0)
print(f"core 0 recalibrated (verification error rate "
      f"{verification.code_error_rate:.0%}) and restored; "
      f"active cores: {list(cluster.active_cores)}")
print(f"fleet report: {cluster.report().drains} drain cycles, "
      f"{cluster.report().total.recalibrations} recalibrations")
