"""Scaling out the front door: a multi-core PhotonicCluster fleet.

One ``PhotonicSession`` is one physical core.  A ``PhotonicCluster``
owns N of them behind the same submit/compile surface and adds the
fleet concerns: routing (which core serves a request), QoS (priority
and admission control) and replication (one model on k cores).  This
example walks all three on a small 2-core fleet and prints the
aggregated ClusterReport.
"""

import numpy as np

from repro import (
    ClusterSaturatedError,
    Dense,
    FlushPolicy,
    Model,
    PhotonicCluster,
    ReLU,
    RoutingPolicy,
)

rng = np.random.default_rng(42)

# -- a 2-core fleet with cache-affinity routing ---------------------------
# Affinity consistent-hashes each weight program onto one core, so a hot
# program compiles once and stays resident in that core's LRU cache.
cluster = PhotonicCluster(
    cores=2,
    grid=(4, 6),
    routing=RoutingPolicy.cache_affinity(),
    flush_policy=FlushPolicy.max_batch(8),
    max_pending=32,
)
print(f"fleet: {cluster.cores} cores of {cluster.rows}x{cluster.columns}, "
      f"routing {cluster.routing.describe()}")

# -- routed raw traffic: two tenants, skewed popularity -------------------
tenants = [rng.integers(0, 8, (4, 6)) for _ in range(2)]
futures = [
    cluster.submit(tenants[0 if turn % 3 else 1], rng.uniform(0.0, 1.0, 6))
    for turn in range(12)
]
cluster.flush()
print(f"first tenant result: {np.round(futures[0].result(), 2)}")

# -- QoS: priority traffic bypasses admission shedding --------------------
tiny = PhotonicCluster(cores=2, grid=(4, 6), max_pending=2)
tiny.submit(tenants[0], rng.uniform(0.0, 1.0, 6))
tiny.submit(tenants[1], rng.uniform(0.0, 1.0, 6))
try:
    tiny.submit(tenants[0], rng.uniform(0.0, 1.0, 6))
except ClusterSaturatedError:
    print("best-effort request shed at max_pending=2 (as configured)")
urgent = tiny.submit(tenants[0], rng.uniform(0.0, 1.0, 6), priority=1)
print(f"priority request admitted anyway: {np.round(urgent.result(), 2)}")

# -- replication: one model endpoint fanned over both cores ---------------
model = Model.sequential(
    Dense(rng.normal(0.0, 0.5, (5, 6))), ReLU(),
    Dense(rng.normal(0.0, 0.5, (3, 5))),
)
endpoint = cluster.compile(
    model, calibration=rng.uniform(0.0, 1.0, (16, 6)), replicas=2
)
batches = [rng.uniform(0.0, 1.0, (4, 6)) for _ in range(4)]
outputs = [endpoint.submit(batch) for batch in batches]
cluster.flush()
print(f"replicated endpoint: {endpoint.replicas} replicas on cores "
      f"{list(endpoint.core_indices)}, output shape {outputs[0].value.shape}")

# -- the fleet report -----------------------------------------------------
print()
print(cluster.report())
