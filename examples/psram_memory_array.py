"""Photonic SRAM: bitcell write transients and 20 GHz array streaming.

Reproduces the Fig. 5 experiment interactively: writes a 1 then a 0
into a bitcell with 50 ps optical pulses, prints the Q/QB waveforms,
checks hold stability, and then streams weight words through a 16x3
array at the 20 GHz update rate with full energy accounting.

Run:  python examples/psram_memory_array.py
"""

import numpy as np

from repro import PsramArray, PsramBitcell


def print_waveform(name, waveform, points=12):
    indices = np.linspace(0, len(waveform.times) - 1, points).astype(int)
    times = waveform.times[indices] * 1e12
    values = waveform.values[indices]
    row = "  ".join(f"{t:6.0f}" for t in times)
    val = "  ".join(f"{v:6.2f}" for v in values)
    print(f"  t (ps) {row}")
    print(f"  {name:>5}  {val}")


def main() -> None:
    print("=== differential pSRAM bitcell (Fig. 1 topology) ===")
    cell = PsramBitcell()
    cell.set_state(0)
    current_q, current_qb = cell.hold_node_currents()
    print(f"holding 0: I_Q = {current_q * 1e6:+.2f} uA, "
          f"I_QB = {current_qb * 1e6:+.2f} uA (stable: {cell.is_hold_stable()})")

    print("\n=== write 1 via a 50 ps, 0 dBm pulse on WBL (Fig. 5) ===")
    result = cell.write(1)
    print(f"success: {result.success}, state now {cell.state}")
    print_waveform("Q", result.recorder.waveform("Q"))
    print_waveform("QB", result.recorder.waveform("QB"))
    flip = result.recorder.waveform("Q").crossings(0.9, rising=True)[0]
    print(f"Q crossed VDD/2 at {flip * 1e12:.1f} ps")
    print("energy ledger:")
    for name, value in result.energy.breakdown().items():
        print(f"  {name:<28} {value * 1e15:8.2f} fJ")
    print(f"  {'TOTAL (paper: 500 fJ)':<28} {result.switch_energy * 1e15:8.2f} fJ")

    print("\n=== write 0 via WBLB ===")
    result = cell.write(0)
    print(f"success: {result.success}, state now {cell.state}")

    print("\n=== 16-word x 3-bit array streaming at 20 GHz ===")
    array = PsramArray(words=16, bits_per_word=3)
    rng = np.random.default_rng(1)
    for generation in range(3):
        values = [int(v) for v in rng.integers(0, 8, 16)]
        flips = array.write_all(values)
        print(f"generation {generation}: wrote {values[:8]}... "
              f"({flips} bitcells flipped)")
    print(f"full-array update time : {array.update_time() * 1e9:.2f} ns")
    print(f"total write energy     : {array.write_energy() * 1e12:.2f} pJ "
          f"({array.switch_events} switches x 0.5 pJ)")
    print(f"array hold power       : {array.hold_power() * 1e3:.3f} mW "
          f"({array.cell_count} cells)")


if __name__ == "__main__":
    main()
