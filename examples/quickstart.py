"""Quickstart: build a photonic tensor core and multiply matrices.

Builds a small core (8x8, 3-bit weights), streams a weight matrix into
the pSRAM arrays, runs analog matrix-vector products through the WDM
compute rows and the 1-hot eoADCs, and compares the digital estimates
against the exact result.  Finishes with the paper's 16x16 performance
summary (4.10 TOPS, 3.02 TOPS/W).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PerformanceModel, PhotonicTensorCore


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== building an 8x8 photonic tensor core (3-bit weights) ===")
    core = PhotonicTensorCore(rows=8, columns=8, weight_bits=3)
    weights = rng.integers(0, core.max_weight + 1, (8, 8))
    core.load_weight_matrix(weights)
    print(f"weights streamed into {8 * 8 * 3} pSRAM bitcells "
          f"in {core.weight_update_time() * 1e9:.2f} ns "
          f"({core.weight_update_energy() * 1e12:.1f} pJ)")

    print("\n=== photonic matrix-vector multiplication ===")
    x = rng.uniform(0.0, 1.0, 8)
    result = core.matvec(x)
    ideal = core.ideal_matvec(x)
    print(f"{'row':>3}  {'ADC code':>8}  {'estimate':>9}  {'exact W@x':>9}")
    for row in range(8):
        print(
            f"{row:>3}  {result.codes[row]:>8}  "
            f"{result.estimates[row]:>9.2f}  {ideal[row]:>9.2f}"
        )
    lsb = 8 * core.max_weight / core.row_adcs[0].levels
    print(f"(outputs quantized to 3-bit codes; 1 LSB = {lsb:.1f} dot-product units)")

    print("\n=== batched matmul ===")
    batch = rng.uniform(0.0, 1.0, (8, 4))
    product = core.matmul(batch)
    print(f"photonic W @ X for X of shape {batch.shape} -> {product.shape}")
    print(np.round(product, 1))

    print("\n=== the paper's 16x16 system (Section IV-D) ===")
    print(PerformanceModel().summary())


if __name__ == "__main__":
    main()
