"""Quickstart: one front door onto the photonic tensor core.

Opens a :class:`repro.api.PhotonicSession` (the single object owning
the 8x8 core, 3-bit pSRAM weights, program caches and flush policy),
serves raw W @ x requests through futures, deploys a tiny declarative
model graph, and shows the unified RunReport accounting.  The session
codes are checked bit-for-bit against the underlying device loop.
Finishes with the paper's 16x16 performance summary (4.10 TOPS,
3.02 TOPS/W).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Dense,
    FlushPolicy,
    Model,
    PerformanceModel,
    PhotonicSession,
    PhotonicTensorCore,
    ReLU,
)


def main() -> None:
    rng = np.random.default_rng(0)

    print("=== opening a PhotonicSession (8x8 tile, 3-bit weights) ===")
    session = PhotonicSession(grid=(8, 8), flush_policy=FlushPolicy.max_batch(16))
    weights = rng.integers(0, session.core.max_weight + 1, (8, 8))
    x = rng.uniform(0.0, 1.0, 8)

    print("\n=== submit -> future -> result (auto-flush) ===")
    future = session.submit(weights, x)
    estimates = future.result()      # pending requests flush here
    codes = future.codes

    # The compiled serving path must match the device loop bit for bit.
    reference = PhotonicTensorCore(rows=8, columns=8)
    reference.load_weight_matrix(weights)
    loop = reference.matvec(x)
    print(f"{'row':>3}  {'ADC code':>8}  {'estimate':>9}  {'exact W@x':>9}")
    ideal = reference.ideal_matvec(x)
    for row in range(8):
        print(f"{row:>3}  {codes[row]:>8}  {estimates[row]:>9.2f}  {ideal[row]:>9.2f}")
    print(f"codes match device loop : {bool(np.array_equal(codes, loop.codes))}")

    print("\n=== a declarative model graph, compiled to an endpoint ===")
    hidden = rng.normal(0.0, 0.5, (6, 8))
    output = rng.normal(0.0, 0.5, (4, 6))
    model = Model.sequential(Dense(hidden), ReLU(), Dense(output))
    endpoint = session.compile(model, calibration=rng.uniform(0.0, 1.0, (16, 8)),
                               label="demo-mlp")
    batch = rng.uniform(0.0, 1.0, (8, 8))
    logits = endpoint.predict(batch)     # submit + result in one call
    print("model layers:")
    for line in model.describe().splitlines():
        print(f"  {line}")
    print(f"endpoint '{endpoint.label}': {batch.shape} -> {logits.shape}")

    print("\n=== the unified RunReport ===")
    print(session.report())

    print("\n=== the paper's 16x16 system (Section IV-D) ===")
    print(PerformanceModel().summary())


if __name__ == "__main__":
    main()
