"""Watching a drift incident happen: alerts, bundles, dashboard.

The telemetry layer records what a run did; ``repro.obs`` decides when
what it did is *wrong*.  This example attaches an ``Observer`` to a
session whose analog stack drifts hard with health probes watching but
recalibration off — the probe code-error rate climbs until the
burn-rate rule pages on the modelled clock.  The flight recorder dumps
a self-contained incident bundle (the triggering alert, the trailing
flush spans, the recent metric window) and the whole capture renders
as a single-file HTML dashboard with the alert marked.
"""

import json
import tempfile
from pathlib import Path

from repro.api import FlushPolicy, PhotonicSession
from repro.health import HealthPolicy
from repro.obs import (
    FlightRecorder,
    Observer,
    ProbeErrorBurnRule,
    prometheus_text,
    save_dashboard,
)
from repro.runtime.serving import drift_suite, synthetic_trace
from repro.telemetry import TraceRecorder

# -- a session that will go wrong, with an observer attached --------------
trace = TraceRecorder(label="incident")
observer = Observer(
    rules=[
        ProbeErrorBurnRule(
            budget=0.02,          # tolerated probe code-error rate
            window_s=30.0,        # long window: catches the slow leak
            short_window_s=10.0,  # short window: confirms it is current
            severity="page",
        )
    ],
    recorder=FlightRecorder(trace=trace, capacity=64),
)
session = PhotonicSession(
    grid=(8, 8),
    max_batch=4,
    flush_policy=FlushPolicy.max_batch(4),
    drift=drift_suite(1.5),  # hard thermal/laser/TIA/comparator aging
    health_policy=HealthPolicy.monitor_only(probe_every=1, probes=8),
    trace=trace,
    obs=observer,
    label="drifting core",
)

# Replay the Zipf-skewed trace, 2 modelled seconds apart: a minute of
# unrecalibrated aging.
for _, weights, x in synthetic_trace(requests=64, rows=8, columns=8, seed=5):
    session.age(2.0)
    session.submit(weights, x)
session.flush()

# -- what the observer saw ------------------------------------------------
for alert in observer.alerts:
    print(f"alert {alert.state:>8} at t={alert.at:6.1f} s: {alert.message}")
page = next(a for a in observer.alerts if a.state == "firing")
print(f"paged on the modelled clock at t={page.fired_at:.1f} s "
      f"(severity {page.severity}, burn {page.value:.1f}x budget)")

bundle = observer.incidents[0]
categories = sorted({span.get("cat") for span in bundle.spans})
print(f"incident bundle: {len(bundle.window)} windowed records, "
      f"{len(bundle.spans)} trailing spans ({', '.join(categories)})")
out_dir = Path(tempfile.gettempdir())
bundle_path = bundle.save(out_dir / "observability_incident_bundle.json")
print(f"bundle written to {bundle_path} "
      f"({len(json.loads(bundle_path.read_text())['spans'])} spans inside)")

# -- exports: Prometheus text + the single-file dashboard -----------------
exposition = prometheus_text(session.telemetry.metrics)
print("prometheus exposition head:")
for line in exposition.splitlines()[:4]:
    print(f"  {line}")

dashboard = save_dashboard(
    out_dir / "observability_incident_dashboard.html",
    trace=trace,
    metrics=session.telemetry.metrics,
    alerts=observer.alerts,
    incidents=observer.incidents,
    title="drift incident",
)
marked = "alert-marker" in dashboard.read_text()
print(f"dashboard written to {dashboard} (alert marked: {marked})")
