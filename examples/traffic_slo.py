"""Serving under a deadline: modelled-time traffic against an SLO.

The replay benches answer "how fast can the core go?"; a deployment
promise is the inverse — "how much traffic sustains p99 <= X?".  This
example drives a real ``PhotonicSession`` with an open-loop Poisson
arrival stream entirely on the modelled clock (no host timing
anywhere, so the numbers are bit-for-bit reproducible), compares a
plain max-batch flush policy against the SLO-derived deadline-aware
one, and binary-searches the capacity knee.
"""

import numpy as np

from repro import (
    SLO,
    DeadlineExceededError,
    FlushPolicy,
    MetricsRegistry,
    ModelClock,
    PhotonicSession,
    Poisson,
    TrafficEngine,
    WorkloadMix,
    find_capacity,
)

BATCH = 16
DEADLINE_S = 1e-6       # every request must resolve within a microsecond
slo = SLO(p99_latency=2.5e-7, deadline_miss_budget=0.01)
mix = WorkloadMix.zipf(tenants=3, rows=8, columns=8, deadline_s=DEADLINE_S)
print(f"workload: {mix.describe()}")
print(f"contract: {slo.describe()}")


def make_session(policy):
    return PhotonicSession(
        grid=(8, 8),
        max_batch=64,
        flush_policy=policy,
        metrics=MetricsRegistry(),
        clock=ModelClock(),
    )


# -- deadline semantics on the front door ---------------------------------
rng = np.random.default_rng(0)
session = make_session(FlushPolicy.explicit())
late = session.submit(rng.integers(0, 8, (8, 8)), rng.uniform(0.0, 1.0, 8),
                      deadline=0.0)
try:
    late.result()
except DeadlineExceededError:
    print("expired-at-submit request shed with DeadlineExceededError")
print(f"ledger: {session.report().deadline_misses} deadline miss recorded")

# -- head to head: max_batch vs the SLO-aware policy ----------------------
# Offer a rate whose batch-fill time is ~2x the deadline: waiting for a
# full batch rides half the queue past its deadline, flushing early
# (deadline_headroom) keeps the promise.
rate = BATCH / (2.0 * DEADLINE_S)
for label, policy in (("max_batch ", FlushPolicy.max_batch(BATCH)),
                      ("slo_aware ", slo.flush_policy(batch_limit=BATCH))):
    engine = TrafficEngine(make_session(policy), mix, Poisson(rate),
                           slo=slo, seed=42)
    run = engine.run(3000)
    print(f"{label}: p99 {run['p99_e2e_s'] * 1e9:7.0f} ns, "
          f"{run['deadline_misses']:4d} misses ({run['miss_rate']:6.2%}), "
          f"SLO {'met' if run['slo_met'] else 'VIOLATED'}")

# -- per-tenant queue-wait vs service-time split --------------------------
engine = TrafficEngine(make_session(slo.flush_policy(batch_limit=BATCH)),
                       mix, Poisson(rate), slo=slo, seed=42)
run = engine.run(3000)
for tenant, split in run["tenants"].items():
    wait = split["queue_wait"]["p99"] * 1e9
    service = split["service"]["p99"] * 1e9
    print(f"  {tenant}: p99 queue-wait {wait:6.1f} ns, "
          f"p99 service {service:6.1f} ns")

# -- the capacity knee ----------------------------------------------------
# Binary-search the offered load for the highest rate still meeting the
# SLO; each probe replays the same seeded tape through a fresh session.
probe = TrafficEngine(
    make_session(FlushPolicy.max_batch(BATCH)),
    WorkloadMix.zipf(tenants=3, rows=8, columns=8),
    Poisson(1e12), seed=42,
).run(800)
tight = SLO(p99_latency=5e-8, deadline_miss_budget=0.0)
knee = find_capacity(
    lambda: make_session(tight.flush_policy(batch_limit=BATCH)),
    WorkloadMix.zipf(tenants=3, rows=8, columns=8, deadline_s=5e-8),
    Poisson(probe["throughput_per_s"]), tight,
    requests=800, seed=42, resolution=0.2,
)
print(f"capacity: {knee['capacity_per_s']:.3g} req/s sustained at "
      f"{tight.describe()} ({len(knee['trials'])} probes)")
