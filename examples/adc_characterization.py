"""Characterizing the 1-hot electro-optic ADC.

Walks the eoADC through the paper's Section IV-C evaluation: the 1-hot
activation windows (Fig. 8), the transient conversion of 0.72/2.0/3.3 V
steps at 8 GS/s (Fig. 9), the transfer function and DNL (Fig. 10), the
power/energy budget, and the extension paths (no-TIA low-power mode,
time interleaving, shift-and-add precision doubling).

Run:  python examples/adc_characterization.py
"""

import numpy as np

from repro import EoAdc, ShiftAddEoAdc, TimeInterleavedEoAdc
from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    missing_codes,
    transfer_function,
)
from repro.sim.waveform import StepSequence


def main() -> None:
    adc = EoAdc()

    print("=== 1-hot encoding (Fig. 8) ===")
    for v_in in (0.3, 1.1, 2.6, 3.8):
        powers = adc.thru_powers(v_in) * 1e6
        active = [
            f"M{k + 1}" for k, p in enumerate(powers)
            if p < adc.thresholders[0].reference_power * 1e6
        ]
        print(f"V_IN = {v_in:.1f} V: thru powers "
              f"{np.array2string(powers, precision=1)} uW -> active {active} "
              f"-> code {adc.convert(v_in):03b}")

    print("\n=== transient conversion at 8 GS/s (Fig. 9) ===")
    ideal = EoAdc(trim_errors=np.zeros(8))
    sequence = StepSequence([0.72, 2.0, 3.3], period=1 / 8e9)
    record = ideal.transient_convert(sequence, duration=sequence.duration)
    for level, code, t in zip((0.72, 2.0, 3.3), record.codes, record.sample_times):
        print(f"V_IN = {level:.2f} V sampled at {t * 1e12:.0f} ps -> {code:03b}")
    print("(2.0 V sits on a bin edge: B4 and B5 both fire; the ceiling "
          "ROM decoder resolves to 100)")

    print("\n=== transfer function and DNL (Fig. 10) ===")
    voltages, codes = transfer_function(adc.convert, 0.0, 4.0 - 1e-6, 2001)
    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, adc.lsb, adc.levels)
    print(f"code transitions (V): "
          f"{[round(transitions[c], 3) for c in range(1, 8)]}")
    print(f"DNL (LSB): {np.round(dnl, 3)}")
    print(f"missing codes: {missing_codes(codes, adc.levels) or 'none'}")

    print("\n=== power and energy (paper: 7.58 mW + 11 mW, 2.32 pJ) ===")
    print(adc.power_ledger().report(scale=1e3, unit="mW"))
    print(f"energy per conversion: {adc.energy_per_conversion * 1e12:.2f} pJ "
          f"at {adc.sample_rate / 1e9:.0f} GS/s")

    print("\n=== extension paths ===")
    no_tia = EoAdc(use_read_chain=False)
    print(f"no-TIA mode     : {no_tia.sample_rate / 1e6:.1f} MS/s, electrical "
          f"{no_tia.power_ledger().total_for('electrical') * 1e3:.2f} mW (-58 %)")
    ti = TimeInterleavedEoAdc(lanes=4)
    print(f"4-way interleave: {ti.sample_rate / 1e9:.0f} GS/s, "
          f"{ti.total_power * 1e3:.1f} mW")
    cascade = ShiftAddEoAdc()
    print(f"shift-and-add   : {cascade.bits} bits, e.g. 1.23 V -> "
          f"{cascade.convert(1.23):06b} (fine LSB {cascade.lsb * 1e3:.1f} mV)")


if __name__ == "__main__":
    main()
