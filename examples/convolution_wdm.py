"""Convolution on the photonic tensor core (im2col over WDM).

The convolutional workload the photonic-tensor-core line of work (the
paper's refs [30], [49]) targets: Sobel edge detection of a digit glyph
executed as im2col matrix multiplies on the simulated core — signed
kernels in differential 3-bit pSRAM weights, patches intensity-encoded
on the frequency comb, eoADC readout.

Run:  python examples/convolution_wdm.py
"""

import numpy as np

from repro import PhotonicTensorCore
from repro.ml import PhotonicConv2d, procedural_digits, sobel_kernels


def render(image: np.ndarray, title: str) -> None:
    """Coarse ASCII rendering of a non-negative 2-D array."""
    shades = " .:-=+*#%@"
    peak = image.max() if image.max() > 0 else 1.0
    print(title)
    for row in image:
        line = "".join(
            shades[min(int(value / peak * (len(shades) - 1)), len(shades) - 1)]
            for value in row
        )
        print("   " + line)


def main() -> None:
    print("=== workload: Sobel edge detection of an 8x8 digit glyph ===")
    images, labels = procedural_digits(samples_per_class=1, noise=0.02, pooled=False)
    image = images[labels.tolist().index(3)].reshape(8, 8)
    render(image, "input glyph ('3'):")

    core = PhotonicTensorCore(rows=4, columns=9, weight_bits=3, adc_bits=6)
    conv = PhotonicConv2d(sobel_kernels(), core, gain=2.0)
    print(f"\nkernels quantized into differential "
          f"{core.weight_bits}-bit pSRAM rows "
          f"(scale {conv.weight_scale:.3f})")

    photonic = conv.forward(image)
    reference = conv.forward_float(image)

    magnitude_photonic = np.hypot(photonic[0], photonic[1])
    magnitude_reference = np.hypot(reference[0], reference[1])
    render(magnitude_photonic, "\nphotonic edge magnitude:")
    render(magnitude_reference, "\nfloat reference edge magnitude:")

    error = np.abs(photonic - reference).max() / np.abs(reference).max()
    print(f"\nmax relative error vs float: {error * 100:.1f} % "
          "(3-bit kernels + 6-bit eoADC readout)")
    print(f"patch throughput bound: {conv.patch_throughput() / 1e9:.0f} G patches/s "
          f"({conv.analog_passes} analog passes per patch: tile grid x "
          "differential arrays, kernels in parallel rows)")


if __name__ == "__main__":
    main()
