"""In-situ training with 20 GHz photonic weight updates.

The paper's conclusion claims the multi-GHz pSRAM updates suit in-situ
training.  This example trains a linear classifier whose forward pass
runs photonically: every gradient step re-streams the quantized weight
matrix into the pSRAM arrays, and the ledger prices those updates at
0.5 pJ per flipped bitcell — affordable exactly because the write path
is this fast and cheap.

Run:  python examples/insitu_training.py
"""

import numpy as np

from repro import PhotonicTensorCore
from repro.ml import InSituTrainer, gaussian_blobs, train_test_split


def main() -> None:
    print("=== task: 3-class Gaussian blobs, 8 features ===")
    features, labels = gaussian_blobs(
        samples_per_class=25, classes=3, features=8, spread=0.6
    )
    x_train, x_test, y_train, y_test = train_test_split(features, labels)
    scale = features.max()
    x_train, x_test = x_train / scale, x_test / scale

    core = PhotonicTensorCore(rows=3, columns=8, adc_bits=6)
    trainer = InSituTrainer(
        core, in_features=8, classes=3, learning_rate=0.25, gain=3.0
    )
    print(f"initial photonic accuracy: "
          f"{trainer.accuracy(x_test, y_test) * 100:.1f} %")

    print("\n=== in-situ training (photonic forward, 20 GHz updates) ===")
    log = trainer.fit(x_train, y_train, epochs=6)
    for epoch, (loss, accuracy, switches) in enumerate(
        zip(log.losses, log.accuracies, log.weight_switch_events)
    ):
        print(f"epoch {epoch}: loss {loss:.3f}, train accuracy "
              f"{accuracy * 100:5.1f} %, cumulative bitcell switches {switches}")

    print(f"\ntest accuracy after training: "
          f"{trainer.accuracy(x_test, y_test) * 100:.1f} %")
    print(f"total weight-update energy : {trainer.update_energy() * 1e9:.2f} nJ "
          "(0.5 pJ per switched bitcell)")
    print(f"matrix re-stream rate bound: "
          f"{trainer.updates_per_second_bound() / 1e9:.1f} G updates/s "
          "(vs ~Hz-kHz for the PCM/WaveShaper macros of Table I)")


if __name__ == "__main__":
    main()
