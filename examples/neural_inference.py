"""Neural inference on the photonic tensor core.

The workload the paper's introduction motivates: a small MLP is trained
in floating point on procedurally generated 4x4 digit glyphs, then
deployed on the simulated photonic tensor core — 3-bit pSRAM weights,
WDM analog matmuls, eoADC readout — and evaluated against the float
baseline across ADC precisions (3-bit native vs the higher-precision
extension).

Run:  python examples/neural_inference.py
"""

import numpy as np

from repro import PhotonicTensorCore
from repro.ml import MLP, PhotonicMLP, procedural_digits, train_test_split


def main() -> None:
    print("=== dataset: procedural 4x4 digit glyphs (10 classes) ===")
    features, labels = procedural_digits(samples_per_class=30, noise=0.10)
    x_train, x_test, y_train, y_test = train_test_split(features, labels)
    print(f"{len(x_train)} training / {len(x_test)} test samples, "
          f"{features.shape[1]} features")

    print("\n=== float training (software) ===")
    mlp = MLP(in_features=16, hidden_features=24, classes=10)
    losses = mlp.train(x_train, y_train, epochs=300, learning_rate=0.3)
    float_accuracy = mlp.accuracy(x_test, y_test)
    print(f"loss {losses[0]:.3f} -> {losses[-1]:.3f}, "
          f"float test accuracy {float_accuracy * 100:.1f} %")

    subset = slice(0, 40)
    print("\n=== photonic inference vs eoADC precision ===")
    print("(differential 3-bit pSRAM weights; per-layer ADC range calibration)")
    print(f"{'ADC bits':>8}  {'accuracy':>9}  {'vs float':>9}")
    for adc_bits in (3, 4, 6):
        core = PhotonicTensorCore(rows=16, columns=16, adc_bits=adc_bits)
        photonic = PhotonicMLP(mlp, core, calibration_batch=x_train[:40])
        accuracy = photonic.accuracy(x_test[subset], y_test[subset])
        print(f"{adc_bits:>8}  {accuracy * 100:>8.1f} %  "
              f"{(accuracy - float_accuracy) * 100:>+8.1f} %")
    print("\n(3-bit output quantization is the paper's native readout; "
          "higher precisions correspond to its high-Q / shift-and-add "
          "extension path)")


if __name__ == "__main__":
    main()
