"""CNN inference served by the compiled photonic runtime.

The im2col CNN workload the photonic-tensor-core literature targets
(the paper's refs [30], [49]), end to end: a fixed edge/smoothing
kernel bank extracts convolutional features of 8x8 digit glyphs on the
photonic core, an MLP head trained in float on those features
classifies them, and the whole stack — conv, hidden and output dense
layers — runs through the compiled ``repro.runtime`` fast path
(``runtime=True``: batched matmuls, code-for-code equal to the device
loop).  The whole network is then deployed through the one front door
— ``PhotonicSession.compile(Model.from_cnn(...))`` — and served with
futures, and the raw convolution goes through the session's conv route
to show the shared program cache.

Run:  python examples/cnn_inference.py
"""

import numpy as np

from repro import Model, PhotonicSession, PhotonicTensorCore
from repro.ml import (
    MLP,
    PhotonicCNN,
    cnn_float_features,
    procedural_digits,
    sobel_kernels,
    train_test_split,
)


def kernel_bank() -> np.ndarray:
    """Sobel x/y edges + Laplacian + 3x3 averaging: four fixed feature
    kernels with signed taps (differential pSRAM programs)."""
    laplacian = np.array([[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]])
    average = np.ones((3, 3)) / 9.0
    return np.concatenate([sobel_kernels(), laplacian[None], average[None]])


def main() -> None:
    print("=== workload: digit classification, conv features on the core ===")
    X, y = procedural_digits(samples_per_class=12, noise=0.08, pooled=False)
    images = X.reshape(-1, 8, 8)
    train_x, test_x, train_y, test_y = train_test_split(images, y)
    bank = kernel_bank()

    # Float-train the MLP head on the exact software counterpart of the
    # photonic feature stage (conv + ReLU + 2x2 average pooling).
    features = cnn_float_features(bank, train_x)
    mlp = MLP(features.shape[1], 32, 10)
    mlp.train(features, train_y, epochs=120, learning_rate=0.1)
    float_accuracy = mlp.accuracy(cnn_float_features(bank, test_x), test_y)
    print(f"float reference accuracy : {float_accuracy:.0%} "
          f"({features.shape[1]} conv features, {len(train_x)} train glyphs)")

    # Deploy on the photonic core with the compiled runtime fast path.
    core = PhotonicTensorCore(rows=8, columns=9, adc_bits=6)
    cnn = PhotonicCNN(bank, mlp, core, calibration_images=train_x[:20], runtime=True)
    subset = slice(0, 20)
    photonic_accuracy = cnn.accuracy(test_x[subset], test_y[subset])
    print(f"photonic accuracy        : {photonic_accuracy:.0%} "
          f"(3-bit differential kernels, 6-bit eoADC, 20 test glyphs)")
    print(f"conv analog passes/patch : {cnn.conv.analog_passes} "
          f"({cnn.conv.patch_throughput() / 1e9:.0f} G patches/s modelled)")

    # The whole network through the one front door: a declarative graph
    # compiled onto a session, served with futures.
    session = PhotonicSession(grid=(8, 9), adc_bits=6)
    endpoint = session.compile(
        Model.from_cnn(bank, mlp), calibration=train_x[:20], label="digit-cnn"
    )
    future = endpoint.submit(test_x[subset])
    logits = future.result()                      # auto-flushes the session
    session_accuracy = float(np.mean(np.argmax(logits, axis=1) == test_y[subset]))
    print(f"\nsession endpoint '{endpoint.label}' accuracy: "
          f"{session_accuracy:.0%} (same stack, declarative graph)")
    print(f"flush report             : {future.report.lines()[0]}")

    # The raw convolution through the session's conv route: repeated
    # banks hit the shared differential program cache.
    futures = [session.submit_conv(bank, glyph) for glyph in test_x[:8]]
    session.flush()
    report = session.report()
    direct = cnn.conv.forward(test_x[0])
    print(f"\nserved {len(futures)} images through session.submit_conv")
    print(f"program cache            : {report.cache_hits} hits / "
          f"{report.cache_misses} misses")
    print(f"served == direct conv    : "
          f"{np.allclose(futures[0].value, direct)}")


if __name__ == "__main__":
    main()
