"""Scaling elastically: warm starts, autoscaling, heterogeneous slots.

Compiling a weight program is the dominant cold-start cost of this
serving stack, so an elastic fleet is only viable if new cores skip
the compile.  This example walks the three `repro.elastic` layers:

1. a ``ProgramStore`` persisting compiled programs to disk so a fresh
   session warm-starts bit-for-bit instead of recompiling,
2. an ``Autoscaler`` growing a cluster under backlog and parking the
   extra cores once the queue drains,
3. a heterogeneous fleet whose capability-aware router places each
   program shape on the cheapest capable slot.
"""

import tempfile
import time

import numpy as np

from repro import (
    Autoscaler,
    CoreSpec,
    FlushPolicy,
    ModelClock,
    PhotonicCluster,
    PhotonicSession,
    ProgramStore,
)

rng = np.random.default_rng(11)
PROGRAMS = [rng.integers(0, 8, (8, 8)) for _ in range(6)]
INPUTS = [rng.random(8) for _ in PROGRAMS]


def serve_all(session):
    """Compile-and-serve every program once; returns (results, wall s)."""
    start = time.perf_counter()
    futures = [session.submit(w, x) for w, x in zip(PROGRAMS, INPUTS)]
    session.flush()
    return [f.result() for f in futures], time.perf_counter() - start


# -- 1. persisted warm starts ---------------------------------------------
store = ProgramStore(tempfile.mkdtemp(prefix="programs-"))
cold = PhotonicSession(grid=(8, 8), program_store=store)
cold_results, cold_s = serve_all(cold)          # compiles, writes through

warm = PhotonicSession(grid=(8, 8), program_store=store)
warm_results, warm_s = serve_all(warm)          # restores from disk
bit_for_bit = all(np.array_equal(a, b)
                  for a, b in zip(cold_results, warm_results))
print(f"cold compile      : {len(PROGRAMS)} programs in {cold_s * 1e3:.1f} ms")
print(f"warm start        : same programs in {warm_s * 1e3:.1f} ms "
      f"({cold_s / warm_s:.1f}x), bit-for-bit: {bit_for_bit}")
print(f"store             : {store.describe()}")

# -- 2. autoscaling on backlog --------------------------------------------
clock = ModelClock()
fleet = PhotonicCluster(
    cores=1,
    grid=(8, 8),
    flush_policy=FlushPolicy.explicit(),
    clock=clock,
    program_store=store,
    autoscaler=Autoscaler(min_cores=1, max_cores=3, watch_every=2,
                          scale_up_pending=4.0, scale_down_pending=1.0),
)
for _ in range(12):                              # backlog builds: grow
    fleet.submit(PROGRAMS[0], rng.random(8))
print(f"\nbacklog of 12     : active cores {list(fleet.active_cores)}")
fleet.flush()
clock.advance(1.0)
for _ in range(8):                               # queues stay empty: park
    fleet.submit(PROGRAMS[0], rng.random(8))
    fleet.flush()
report = fleet.report()
print(f"quiet again       : active {list(fleet.active_cores)}, "
      f"parked {list(fleet.parked)}")
print(f"fleet report      : {report.scale_ups} scale-ups, "
      f"{report.scale_downs} scale-downs, "
      f"{report.core_seconds:.3g} core-seconds")

# -- 3. heterogeneous slots -----------------------------------------------
mixed = PhotonicCluster(
    cores=2,
    grid=(8, 8),
    flush_policy=FlushPolicy.explicit(),
    core_specs=[None, CoreSpec(rows=16, columns=16, adc_bits=7)],
)
mixed.submit(rng.integers(0, 8, (8, 8)), rng.random(8))     # small + cheap
mixed.submit(rng.integers(0, 8, (16, 16)), rng.random(16))  # needs one pass
mixed.submit(rng.integers(0, 8, (8, 8)), rng.random(8),
             min_adc_bits=7)                                # needs precision
placements = [session.pending for session in mixed.sessions]
mixed.flush()
specs = [spec.describe() if spec else "default" for spec in mixed.core_specs]
print(f"\nheterogeneous     : specs {specs}")
print(f"placement         : small program on core 0, 16x16 and "
      f"7-bit programs on core 1 -> pending {placements}")
