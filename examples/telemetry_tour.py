"""Observing the serving stack: traces, quantiles and exports.

Every claim this repo reproduces is a latency/energy number, so the
serving stack can narrate everything it models.  This tour attaches a
``TraceRecorder`` to a 2-core cluster, replays a skewed request mix,
reads the modelled latency quantiles off the reports, and dumps a
Chrome trace-event JSON that opens directly in Perfetto
(https://ui.perfetto.dev).  All timestamps are on the *modelled*
clock — ADC sample periods and pSRAM weight streaming — not wall time.
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    FlushPolicy,
    PhotonicCluster,
    PhotonicSession,
    RoutingPolicy,
    TraceRecorder,
)

rng = np.random.default_rng(7)

# -- a traced single session ----------------------------------------------
recorder = TraceRecorder(label="telemetry tour")
session = PhotonicSession(
    grid=(4, 6),
    flush_policy=FlushPolicy.max_batch(8),
    trace=recorder,
    label="session",
)
tenants = [rng.integers(0, 8, (4, 6)) for _ in range(3)]
futures = [
    session.submit(tenants[turn % 3 if turn % 4 else 0], rng.uniform(0.0, 1.0, 6))
    for turn in range(24)
]
session.flush()

# Per-flush reports carry the exact window quantiles; the cumulative
# session report derives them from log-spaced-bin histograms.
report = session.report()
e2e = report.latency_quantiles["end_to_end"]
print(f"session end-to-end: p50 {e2e['p50'] * 1e9:.2f} ns, "
      f"p99 {e2e['p99'] * 1e9:.2f} ns, p999 {e2e['p999'] * 1e9:.2f} ns "
      f"over {e2e['count']} requests")
print(f"queue wait        : p99 "
      f"{report.latency_quantiles['queue_wait']['p99'] * 1e9:.2f} ns")

# -- a traced fleet: per-core tracks plus fleet-level instants ------------
cluster = PhotonicCluster(
    cores=2,
    grid=(4, 6),
    routing=RoutingPolicy.cache_affinity(),
    flush_policy=FlushPolicy.max_batch(8),
    trace=recorder,
    label="fleet",
)
for turn in range(32):
    cluster.submit(tenants[turn % 3 if turn % 4 else 0],
                   rng.uniform(0.0, 1.0, 6))
cluster.flush()

fleet = cluster.report()
fe2e = fleet.latency_quantiles["end_to_end"]
print(f"fleet end-to-end  : p50 {fe2e['p50'] * 1e9:.2f} ns, "
      f"p999 {fe2e['p999'] * 1e9:.2f} ns over {fe2e['count']} requests "
      f"(merged bin-for-bin across {fleet.cores} cores)")

# Every report exports JSON-ready via the shared ReportExport mixin.
exported = fleet.to_dict()
print(f"ClusterReport.to_dict keys: {sorted(exported)[:5]} ...")

# -- the Chrome trace -----------------------------------------------------
out = Path(tempfile.gettempdir()) / "telemetry_tour_trace.json"
recorder.save(out)
payload = json.loads(out.read_text())
categories = sorted({event.get("cat") for event in payload["traceEvents"]
                     if event.get("cat")})
print(f"{len(recorder.events)} trace events "
      f"(categories: {', '.join(categories)})")
print(f"trace written to {out} — open it in Perfetto")
