"""Legacy setuptools shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 builds cannot produce editable wheels; this shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
