"""Setuptools metadata for the repro package.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 builds cannot produce editable wheels; keeping the metadata
here (instead of pyproject.toml) lets ``pip install -e .`` fall back to
``setup.py develop``.  The ``repro`` console script is the CLI front
door (``repro serve-bench``, equivalent to ``python -m repro``).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Mixed-signal photonic SRAM tensor core with electro-optic ADC "
        "(DAC 2025 reproduction) plus a batched photonic serving stack"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.__main__:main",
        ],
    },
)
