"""Ablation: thermal drift and heater-based wavelength locking.

The paper: MRRs 'are susceptible to thermal and environmental
fluctuations, which can be effectively mitigated through thermal tuning
using integrated heaters'.  We heat the compute rings, watch the
multiplication linearity collapse, then close the lock loop and watch
it recover.
"""

import numpy as np

from repro.analysis.linearity import linearity_report
from repro.analysis.reporting import ascii_table
from repro.core.compute_core import VectorComputeCore
from repro.photonics.thermal import Heater, WavelengthLocker


def measure_linearity(core):
    rng = np.random.default_rng(17)
    expected, measured = [], []
    for _ in range(10):
        x = rng.uniform(0.0, 1.0, 4)
        expected.append(core.ideal_dot_product(x))
        measured.append(core.normalized_output(x))
    return linearity_report(expected, measured)


def apply_drift(core, delta_kelvin):
    for planes in core.multipliers:
        for multiplier in planes:
            multiplier.ring.delta_temperature = delta_kelvin
    core.load_weights(core.weights)  # rebuild the transmission cache


def apply_lock(core, delta_kelvin):
    for planes in core.multipliers:
        for multiplier in planes:
            ring = multiplier.ring
            heater = Heater(ring.thermal.spec)
            locker = WavelengthLocker(heater, gain=0.6)
            drift = ring.thermal.wavelength_shift(delta_kelvin)
            residual = locker.lock(drift, iterations=25)
            ring.heater_shift = residual - drift
    core.load_weights(core.weights)


def test_thermal_drift_and_lock(benchmark, report, tech):
    core = VectorComputeCore(4, 3, tech)
    core.load_weights([7, 3, 5, 1])

    rows = []
    baseline = measure_linearity(core)
    rows.append(("0.0 K (nominal)", "off", f"{baseline.r_squared:.6f}",
                 f"{baseline.max_abs_error:.4f}"))
    for drift in (0.5, 1.0, 2.0):
        apply_drift(core, drift)
        hot = measure_linearity(core)
        rows.append((f"{drift} K drift", "off", f"{hot.r_squared:.6f}",
                     f"{hot.max_abs_error:.4f}"))
        apply_lock(core, drift)
        locked = measure_linearity(core)
        rows.append((f"{drift} K drift", "locked", f"{locked.r_squared:.6f}",
                     f"{locked.max_abs_error:.4f}"))
        # Reset for the next corner.
        for planes in core.multipliers:
            for multiplier in planes:
                multiplier.ring.heater_shift = 0.0
                multiplier.ring.delta_temperature = 0.0
    core.load_weights(core.weights)

    benchmark.pedantic(measure_linearity, args=(core,), rounds=3, iterations=1)

    lines = [
        ascii_table(
            ("condition", "wavelength lock", "multiply R^2", "max |residual|"), rows
        ),
        "",
        "shape: ~1 K of drift (75 pm, half a compute-ring linewidth) "
        "visibly bends the multiplication; the integral heater lock "
        "restores the nominal linearity — the paper's thermal-tuning "
        "mitigation, quantified.",
    ]
    report("\n".join(lines), title="Ablation — thermal drift and heater locking")

    nominal_r2 = baseline.r_squared
    drifted = float(rows[3][2])  # 1 K, lock off
    relocked = float(rows[4][2])  # 1 K, locked
    assert drifted < nominal_r2 - 1e-4
    assert relocked > drifted
    assert abs(relocked - nominal_r2) < 1e-3
