"""Ablation: Monte-Carlo yield of the eoADC vs ring-trim accuracy.

The paper leans on thermal tuning to stabilize MRRs; this bench
quantifies the requirement: for each trim residual sigma we sample
converters, measure max |DNL| and missing codes, and report the yield
of parts meeting a |DNL| < 0.5 LSB / no-missing-codes spec.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.core.eoadc import EoAdc
from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    missing_codes,
    transfer_function,
)
from repro.sim.montecarlo import MonteCarlo, SummaryStatistics


def build_and_measure(tech, sigma, rng):
    trims = rng.normal(0.0, sigma, 8)
    adc = EoAdc(tech, trim_errors=trims, strict_decoder=False)
    voltages, codes = transfer_function(adc.convert, 0.0, 4.0 - 1e-6, 801)
    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, adc.lsb, adc.levels)
    if missing_codes(codes, adc.levels):
        return 2.0  # sentinel: a missing code is an automatic fail
    return float(np.max(np.abs(dnl)))


def test_trim_yield(benchmark, report, tech):
    trials = 24
    rows = []
    for sigma in (1e-12, 3e-12, 6e-12, 10e-12):
        mc = MonteCarlo(seed=99)
        samples = mc.run(lambda rng: build_and_measure(tech, sigma, rng), trials)
        stats = SummaryStatistics.from_samples(samples)
        yield_fraction = mc.yield_fraction(samples, lambda dnl: dnl < 0.5)
        low, high = mc.confidence_interval_95(yield_fraction, trials)
        rows.append(
            (
                f"{sigma * 1e12:.0f}",
                f"{sigma * 1e12 / 32:.3f}",
                f"{stats.mean:.3f}",
                f"{stats.maximum:.3f}",
                f"{yield_fraction * 100:.0f} % [{low * 100:.0f}, {high * 100:.0f}]",
            )
        )

    benchmark.pedantic(
        build_and_measure,
        args=(tech, 3e-12, np.random.default_rng(1)),
        rounds=3,
        iterations=1,
    )

    lines = [
        ascii_table(
            (
                "trim sigma (pm)",
                "~voltage error (V)",
                "mean max|DNL|",
                "worst max|DNL|",
                "yield |DNL|<0.5 (95% CI)",
            ),
            rows,
        ),
        f"({trials} Monte-Carlo samples per corner; 2.0 marks a missing code)",
        "",
        "shape: sub-linewidth trim (the paper's thermal tuning) keeps "
        "yield high; letting rings drift by >= 6 pm collapses it — the "
        "quantitative case for the integrated heaters the paper cites.",
    ]
    report("\n".join(lines), title="Ablation — Monte-Carlo DNL yield vs trim")

    yields = [float(row[4].split(" ")[0]) for row in rows]
    assert yields[0] >= 95.0  # tight trim: essentially full yield
    assert yields[-1] <= yields[0]  # loose trim can only hurt
