"""Fig. 3(a): MRR thru-port spectra as a function of junction voltage.

The paper shows three transmission spectra (V_REF1 > V_REF2 > V_REF3 at
the p-terminal, input at the n-terminal): at V_pn = 0 the notch sits at
lambda_IN; raising V_IN red-shifts the spectra until the adjacent
reference's curve aligns with the notch.  We regenerate the three
curves and verify the notch positions walk with voltage.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.photonics.mrr import AllPassMRR
from repro.photonics.pn_junction import DepletionTuner
from repro.sim.sweep import wavelength_grid


def build_ring(tech):
    return AllPassMRR(
        tech.adc_ring_spec(),
        design_wavelength=tech.wavelength,
        design_voltage=0.0,
        waveguide=tech.waveguide,
        coupler=tech.coupler,
        tuner=DepletionTuner(tech.depletion),
    )


def sweep_spectra(ring, wavelengths, junction_voltages):
    return {
        v_pn: np.asarray(ring.thru_transmission(wavelengths, voltage=v_pn))
        for v_pn in junction_voltages
    }


def test_fig3a_voltage_dependent_spectra(benchmark, report, tech):
    ring = build_ring(tech)
    wavelengths = wavelength_grid(tech.wavelength, 150e-12, points=1501)
    # V_pn = V_REF - V_IN for a fixed V_IN at V_REF2: one ring on
    # resonance, its neighbours detuned by +-1 LSB.
    junction_voltages = (+0.5, 0.0, -0.5)

    spectra = benchmark(sweep_spectra, ring, wavelengths, junction_voltages)

    notch_positions = {
        v: float(wavelengths[np.argmin(t)]) for v, t in spectra.items()
    }
    rows = []
    for v_pn in junction_voltages:
        transmission = spectra[v_pn]
        rows.append(
            (
                f"{v_pn:+.2f}",
                f"{(notch_positions[v_pn] - tech.wavelength) * 1e12:+.1f}",
                f"{transmission.min():.4f}",
                f"{float(np.interp(tech.wavelength, wavelengths, transmission)):.4f}",
            )
        )
    report(
        ascii_table(
            ("V_pn (V)", "notch shift (pm)", "T_min", "T at lambda_IN"), rows
        ),
        title="Fig. 3(a) — MRR thru spectra vs junction voltage",
    )

    # Paper behaviour: V_pn = 0 puts the notch at lambda_IN with minimal
    # power; either polarity moves the notch away and restores power.
    assert abs(notch_positions[0.0] - tech.wavelength) < 1e-12
    t_on = float(np.interp(tech.wavelength, wavelengths, spectra[0.0]))
    for v_pn in (+0.5, -0.5):
        t_off = float(np.interp(tech.wavelength, wavelengths, spectra[v_pn]))
        assert t_off > 10 * max(t_on, 1e-6)
    # Red shift for negative V_pn (stronger reverse bias), blue for positive.
    assert notch_positions[-0.5] > tech.wavelength
    assert notch_positions[+0.5] < tech.wavelength
