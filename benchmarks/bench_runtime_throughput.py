"""Runtime throughput: compiled fast path vs the seed device loop.

The serving runtime's contract is that batched compiled evaluation is
(1) code-for-code identical to the device loop and (2) fast enough to
serve traffic.  This bench measures both on the paper's 16x16 core
with a 256-column batch — the acceptance floor is a 10x speedup, the
compiled path typically lands orders of magnitude beyond it — and
reports end-to-end tiled throughput for a 40x40 workload sharded onto
a 3x3 grid of 16x16 tiles.

Besides the terminal report, the matmul-path summary is written to
``BENCH_runtime.json`` at the repo root (the conv path writes
``BENCH_conv.json``) so the perf trajectory covers both serving paths
machine-readably across runs.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.core.tensor_core import PhotonicTensorCore
from repro.runtime.tiling import TiledMatmul

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def test_compiled_engine_speedup(benchmark, report, tech):
    rng = np.random.default_rng(1)
    core = PhotonicTensorCore(rows=16, columns=16, technology=tech)
    core.load_weight_matrix(rng.integers(0, 8, (16, 16)))
    batch = rng.uniform(0.0, 1.0, (16, 256))

    compile_start = time.perf_counter()
    engine = core.compile()
    compile_time = time.perf_counter() - compile_start

    loop_start = time.perf_counter()
    loop_estimates = core.matmul(batch)
    loop_time = time.perf_counter() - loop_start

    result = benchmark(engine.matmul, batch)
    fast_start = time.perf_counter()
    engine.matmul(batch)
    fast_time = time.perf_counter() - fast_start
    speedup = loop_time / fast_time

    loop_codes = np.stack(
        [core.matvec(batch[:, col]).codes for col in range(batch.shape[1])], axis=1
    )
    codes_equal = bool(np.array_equal(result.codes, loop_codes))
    estimates_equal = bool(np.allclose(result.estimates, loop_estimates))

    rows = [
        ("seed device loop", f"{loop_time * 1e3:.1f}", f"{256 / loop_time:,.0f}", "1.0x"),
        (
            "compiled engine",
            f"{fast_time * 1e3:.3f}",
            f"{256 / fast_time:,.0f}",
            f"{speedup:,.0f}x",
        ),
    ]
    summary = {
        "core": [16, 16],
        "batch": 256,
        "loop_inferences_per_s": 256 / loop_time,
        "compiled_inferences_per_s": 256 / fast_time,
        "speedup": speedup,
        "compile_time_ms": compile_time * 1e3,
        "codes_match_loop": codes_equal,
        "estimates_match_matmul": estimates_equal,
    }
    BENCH_JSON.write_text(json.dumps(summary, indent=2) + "\n")

    lines = [
        "16x16 core, 3-bit weights, (16, 256) input batch",
        ascii_table(("path", "time [ms]", "inferences/s", "speedup"), rows),
        "",
        f"engine compile time       : {compile_time * 1e3:.1f} ms "
        "(once per weight program)",
        f"codes match device loop   : {codes_equal}",
        f"estimates match matmul    : {estimates_equal}",
        f"summary written to        : {BENCH_JSON.name}",
    ]
    report("\n".join(lines), title="Runtime — compiled engine vs seed loop")

    assert codes_equal and estimates_equal
    assert speedup >= 10.0


def test_tiled_large_matrix_throughput(benchmark, report, tech):
    rng = np.random.default_rng(2)
    weights = rng.integers(0, 8, (40, 40))
    build_start = time.perf_counter()
    tiled = TiledMatmul(weights, tile_rows=16, tile_columns=16, technology=tech)
    build_time = time.perf_counter() - build_start
    batch = rng.uniform(0.0, 1.0, (40, 32))

    estimates = benchmark(tiled.matmul, batch)
    run_start = time.perf_counter()
    tiled.matmul(batch)
    run_time = time.perf_counter() - run_start

    exact = weights @ batch
    bound = tiled.quantization_error_bound()
    within = bool(np.all(np.abs(estimates - exact) <= bound[:, np.newaxis]))
    worst = float(np.abs(estimates - exact).max())

    lines = [
        f"40x40 weights on a {tiled.row_tiles}x{tiled.column_tiles} grid of "
        f"16x16 tiles ({tiled.tile_count} tiles), 32-column batch",
        f"grid build + compile      : {build_time * 1e3:.0f} ms",
        f"batched evaluation        : {run_time * 1e3:.2f} ms "
        f"({32 / run_time:,.0f} inferences/s)",
        f"per-tile TIA gains        : {np.round(tiled.gains, 2).tolist()}",
        f"worst |error| vs W @ x    : {worst:.2f} dot units "
        f"(envelope {bound.min():.2f}..{bound.max():.2f})",
        f"within quantization bound : {within}",
    ]
    report("\n".join(lines), title="Runtime — tiled 40x40 throughput")

    assert within
