"""Traffic capacity under an SLO: the knee of the offered-load curve.

``repro.traffic`` promises that capacity — the highest sustained
offered rate still meeting ``SLO(p99, miss_budget)`` — is a measurable,
reproducible number on the modelled clock, and that the SLO-derived
deadline-aware flush policy beats plain max-batch on deadline misses
when the batch-fill time overruns the deadline.  This bench runs a
scaled-down ``run_traffic_serve_bench`` (the full 1M-request version is
``python -m repro serve-bench traffic``), asserts both promises and
writes ``BENCH_traffic.json`` at the repo root so the capacity curve
stays machine-readable alongside ``BENCH_cluster.json``.
"""

from pathlib import Path

from repro.runtime.serving import run_traffic_serve_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_traffic.json"


def test_traffic_capacity_curve(benchmark, report):
    summary = benchmark.pedantic(
        run_traffic_serve_bench,
        kwargs={
            "requests": 20000,
            "cores_sweep": (1, 2),
            "probe_requests": 1500,
            "trial_requests": 1500,
            "head_requests": 4000,
            "max_doublings": 4,
            "json_path": BENCH_JSON,
            "print_fn": lambda _: None,
        },
        iterations=1,
        rounds=1,
    )

    sustained = summary["sustained"]
    lines = [
        f"{sustained['offered']} sustained requests at "
        f"{sustained['offered_rate_per_s']:,.3g} req/s modelled "
        f"({sustained['wall_elapsed_s']:.1f} s wall), "
        f"p99 {(sustained['p99_e2e_s'] or 0) * 1e9:,.0f} ns, "
        f"miss rate {sustained['miss_rate']:.2%}",
        f"{'cores':>5}  {'routing':<15} {'capacity req/s':>14}",
    ]
    for entry in summary["capacity_curve"]:
        for routing, record in entry["policies"].items():
            lines.append(
                f"{entry['cores']:>5}  {routing:<15} "
                f"{record['capacity_per_s']:>14,.3g}"
            )
    head = summary["head_to_head"]
    lines.append(
        f"head-to-head: max_batch {head['max_batch']['miss_rate']:.1%} "
        f"misses vs slo_aware {head['slo_aware']['miss_rate']:.1%}"
    )
    lines.append(f"summary written to: {BENCH_JSON.name}")
    report("\n".join(lines), title="Traffic — SLO capacity curve")

    # The sustained run holds its SLO and resolves every admitted
    # request (the engine itself raises on unresolved futures).
    assert sustained["slo_met"]
    assert sustained["resolved"] == sustained["admitted"]
    # Every (cores, routing) point produced a positive capacity.
    for entry in summary["capacity_curve"]:
        for record in entry["policies"].values():
            assert record["capacity_per_s"] > 0.0
    # The reason the deadline-aware policy exists: far fewer misses
    # than plain max-batch at the same offered load.
    assert (
        head["slo_aware"]["deadline_misses"]
        < head["max_batch"]["deadline_misses"]
    )
    assert BENCH_JSON.exists()
