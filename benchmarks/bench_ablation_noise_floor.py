"""Ablation: the noise floor under the paper's optical power budget.

The paper's 200 uW/channel eoADC input and -20 dBm pSRAM bias are
design choices, not physical limits.  This bench sweeps the optical
powers against the shot/thermal-noise floor: how far the budget could
shrink at fixed error targets, and where the analog compute path's
effective resolution sits relative to the 3-bit eoADC.
"""

import numpy as np

from repro.analysis.noise import (
    ComputePathNoiseAnalysis,
    EoAdcNoiseAnalysis,
    PsramNoiseAnalysis,
)
from repro.analysis.reporting import ascii_table


def full_analysis(tech):
    adc = EoAdcNoiseAnalysis(tech)
    compute = ComputePathNoiseAnalysis(tech)
    psram = PsramNoiseAnalysis(tech)
    return (
        adc.minimum_channel_power(1e-12),
        compute.effective_bits(16),
        psram.minimum_bias_power(1e-15),
    )


def test_noise_floor(benchmark, report, tech):
    min_channel, effective_bits, min_bias = benchmark.pedantic(
        full_analysis, args=(tech,), rounds=3, iterations=1
    )

    adc = EoAdcNoiseAnalysis(tech)
    rows = []
    for power in (200e-6, 100e-6, 50e-6, 25e-6, 10e-6):
        error = adc.code_error_probability(power)
        rows.append(
            (
                f"{power * 1e6:.0f}",
                f"{adc.worst_case_margin(power) * 1e6:.2f}",
                f"{error:.1e}" if error > 1e-300 else "< 1e-300",
            )
        )

    psram = PsramNoiseAnalysis(tech)
    bias_rows = []
    for bias in (10e-6, 5e-6, 2e-6, 1e-6):
        prob = psram.disturb_probability(bias)
        bias_rows.append(
            (
                f"{bias * 1e6:.0f}",
                f"{psram.hold_margin(bias) * 1e6:.2f}",
                f"{prob:.1e}" if prob > 1e-300 else "< 1e-300",
            )
        )

    compute = ComputePathNoiseAnalysis(tech)
    lines = [
        "eoADC decision margin vs channel power:",
        ascii_table(
            ("channel power (uW)", "worst margin (uA)", "code-error probability"),
            rows,
        ),
        f"minimum channel power for 1e-12 error: {min_channel * 1e6:.1f} uW "
        f"(paper uses 200 uW -> {200e-6 / min_channel:.1f}x headroom)",
        "",
        "pSRAM hold margin vs bias power:",
        ascii_table(
            ("bias power (uW)", "hold margin (uA)", "disturb probability"), bias_rows
        ),
        f"minimum bias for 1e-15 disturb: {min_bias * 1e6:.2f} uW "
        f"(paper uses 10 uW = -20 dBm)",
        "",
        f"analog compute path: SNR {compute.snr_db(16):.1f} dB at half scale, "
        f"effective resolution {effective_bits:.1f} bits",
        "shape: the 3-bit eoADC — not the analog optics — bounds the output "
        "precision, consistent with the paper's precision-extension "
        "discussion; the optical budget carries ~9x (ADC) and ~4x (pSRAM) "
        "noise headroom that a lower-power design point could spend.",
    ]
    report("\n".join(lines), title="Ablation — optical power vs noise floor")

    assert min_channel < tech.eoadc.channel_power
    assert min_bias < tech.psram.bias_power
    assert effective_bits > tech.eoadc.bits + 2
    margins = [float(row[1]) for row in rows]
    assert all(b < a for a, b in zip(margins, margins[1:]))
