"""Ablation: time-interleaved eoADC vs an electrical TI-ADC.

The paper proposes time interleaving to scale the eoADC's rate, while
criticizing electrical TI-ADCs for mismatch/synchronization overheads.
We quantify both: the interleaved eoADC's rate/power scaling with lane
mismatches, and the electrical baseline's SNDR loss plus calibration
power tax.
"""

import math

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.baselines.ti_adc import TimeInterleavedElectricalAdc
from repro.core.eoadc import TimeInterleavedEoAdc


def stream(ti_adc, count):
    return ti_adc.convert_stream(lambda t: 2.0 + 1.9 * math.sin(2e9 * t), count)


def test_time_interleaving_trade(benchmark, report, tech):
    rows = []
    for lanes in (2, 4):
        ti = TimeInterleavedEoAdc(lanes=lanes, technology=tech)
        codes = stream(ti, 64)
        rows.append(
            (
                f"eoADC x{lanes}",
                f"{ti.sample_rate / 1e9:.0f} GS/s",
                f"{ti.total_power * 1e3:.1f} mW",
                f"{ti.energy_per_conversion * 1e12:.2f} pJ",
                f"{len(set(codes))} distinct codes on a sine",
            )
        )
    ti4 = TimeInterleavedEoAdc(lanes=4, technology=tech)
    benchmark(stream, ti4, 64)

    electrical = TimeInterleavedElectricalAdc(lanes=8)
    clean = TimeInterleavedElectricalAdc(lanes=8, offset_sigma=1e-9, gain_sigma=1e-9)
    rows.append(
        (
            "electrical TI-ADC x8",
            f"{electrical.aggregate_rate / 1e9:.0f} GS/s",
            f"{electrical.total_power * 1e3:.1f} mW",
            f"{electrical.energy_per_conversion * 1e12:.2f} pJ",
            f"SNDR {electrical.mismatch_sndr_db():.1f} dB "
            f"(ideal lanes: {clean.mismatch_sndr_db():.1f} dB)",
        )
    )
    lines = [
        ascii_table(("converter", "rate", "power", "energy/conv", "behaviour"), rows),
        "",
        "interleaving multiplies rate and power together (energy/conv "
        "constant); the electrical baseline additionally pays "
        f"{electrical.lanes * electrical.calibration_power_per_lane * 1e3:.1f} mW "
        "of mismatch calibration — the paper's synchronization objection.",
    ]
    report("\n".join(lines), title="Ablation — time-interleaved structures")

    two = TimeInterleavedEoAdc(lanes=2, technology=tech)
    assert two.sample_rate == 2 * 8e9
    assert ti4.sample_rate == 4 * 8e9
    np.testing.assert_allclose(
        two.energy_per_conversion, ti4.energy_per_conversion, rtol=1e-6
    )
    assert electrical.mismatch_sndr_db() < clean.mismatch_sndr_db()
