"""Drift recovery: online recalibration wins back lost code accuracy.

The health subsystem's contract is that (1) an *unmonitored* session
serving on a drifting analog stack accumulates a measurable probe
code-error rate, and (2) a session running a
:class:`repro.health.HealthPolicy` detects the walk, recalibrates
online and returns to **bit-for-bit** agreement with its compile-time
golden codes — paying a bounded, explicitly-accounted calibration
energy/latency overhead.  This bench replays the Zipf multi-tenant
trace through every (drift severity x probe cadence x recalibration
threshold) configuration, asserts both halves of that contract, and
writes ``BENCH_drift.json`` at the repo root so the recovery curves
stay machine-readable alongside the other ``BENCH_*.json`` artifacts.
"""

from pathlib import Path

from repro.runtime.serving import run_drift_serve_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_drift.json"


def test_drift_recovery_sweep(benchmark, report, tech):
    summary = benchmark.pedantic(
        run_drift_serve_bench,
        kwargs={
            "requests": 240,
            "json_path": BENCH_JSON,
            "print_fn": lambda _: None,
        },
        iterations=1,
        rounds=1,
    )

    lines = [
        "240-request Zipf trace, 8x8 tiles, 0.25 s modelled arrival spacing",
        f"{'severity':>8}  {'health policy':<28} {'final err':>9}  "
        f"{'recals':>6}  {'cal nJ':>10}",
    ]
    for entry in summary["sweep"]:
        for config in entry["configs"]:
            lines.append(
                f"{entry['severity']:>8.2g}  {config['label']:<28} "
                f"{config['final_code_error_rate']:>9.0%}  "
                f"{config['recalibrations']:>6}  "
                f"{config['calibration_energy_nj']:>10.2f}"
            )
    lines.append(f"summary written to: {BENCH_JSON.name}")
    report("\n".join(lines), title="Health — drift recovery sweep")

    by_severity = {entry["severity"]: entry["configs"] for entry in summary["sweep"]}
    for severity, configs in by_severity.items():
        unmonitored = next(c for c in configs if c["cadence"] == 0)
        monitored = [c for c in configs if c["cadence"] > 0]
        # (1) Unchecked drift is measurable: the uncalibrated session
        # ends the trace with probe codes walked off golden.
        assert unmonitored["final_code_error_rate"] > 0.0
        assert unmonitored["recalibrations"] == 0
        # (2) The tightest policy recalibrates at least once and every
        # post-trim verification probe agrees with golden bit for bit.
        tight = min(monitored, key=lambda c: (c["threshold"], c["cadence"]))
        assert tight["recalibrations"] >= 1
        assert tight["recovered_bit_for_bit"]
        # Recalibration recovers accuracy the uncalibrated run loses.
        assert (
            tight["final_code_error_rate"] < unmonitored["final_code_error_rate"]
        )
        # The recovery curve shows the round trip: some probe over the
        # threshold, and a post-recalibration probe back at zero.
        curve = tight["recovery"]
        assert any(
            point["recalibrated"] and point["code_error_rate"] == 0.0
            for point in curve
        )
        # The overhead is accounted, not free: monitored runs pay more
        # calibration energy than the single final check of the
        # unmonitored control.
        assert (
            tight["calibration_energy_nj"] > unmonitored["calibration_energy_nj"]
        )
    assert BENCH_JSON.exists()
