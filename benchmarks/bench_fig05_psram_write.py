"""Fig. 5: pSRAM weight-write verification.

The paper applies 50 ps, 0 dBm write pulses on WBL then WBLB and shows
Q/QB flipping and re-stabilizing, at 20 GHz with 0.5 pJ per switching
event.  We regenerate the Q/QB waveforms for a 1-write followed by a
0-write and re-measure the energy.
"""

import numpy as np

from repro.analysis.reporting import ascii_table, format_series
from repro.core.psram import PsramArray, PsramBitcell


def write_one_bit(tech):
    cell = PsramBitcell(tech)
    cell.set_state(0)
    return cell.write(1)


def test_fig5_write_waveforms_and_energy(benchmark, report, tech):
    result = benchmark.pedantic(write_one_bit, args=(tech,), rounds=3, iterations=1)
    assert result.success

    # Full Fig. 5 sequence: write 1, then write 0, on one cell.
    cell = PsramBitcell(tech)
    cell.set_state(0)
    first = cell.write(1)
    second = cell.write(0)
    assert first.success and second.success

    q = first.recorder.waveform("Q")
    qb = first.recorder.waveform("QB")
    lines = [
        format_series(
            "t (ps)",
            "Q (V)",
            (q.times * 1e12).tolist(),
            q.values.tolist(),
            max_rows=15,
        ),
        "",
        format_series(
            "t (ps)",
            "QB (V)",
            (qb.times * 1e12).tolist(),
            qb.values.tolist(),
            max_rows=15,
        ),
    ]
    flip_time = q.crossings(tech.psram.vdd / 2.0, rising=True)[0]
    energy_rows = [
        (name, f"{value * 1e15:.2f}")
        for name, value in first.energy.breakdown().items()
    ]
    energy_rows.append(("TOTAL (paper: 500 fJ)", f"{first.switch_energy * 1e15:.2f}"))
    lines.append("")
    lines.append(ascii_table(("write-1 energy term", "fJ (wall-plug)"), energy_rows))
    lines.append("")
    lines.append(f"Q crosses VDD/2 at {flip_time * 1e12:.1f} ps (pulse width 50 ps)")
    lines.append(f"update rate: {tech.psram.update_rate / 1e9:.0f} GHz (paper: 20 GHz)")
    array = PsramArray(16, 3, tech)
    lines.append(
        f"16-word x 3-bit array full update: {array.update_time() * 1e9:.2f} ns"
    )
    report("\n".join(lines), title="Fig. 5 — pSRAM write transient + energy")

    np.testing.assert_allclose(first.switch_energy, 0.5e-12, rtol=1e-3)
    np.testing.assert_allclose(second.switch_energy, 0.5e-12, rtol=1e-3)
    assert flip_time < 50e-12
