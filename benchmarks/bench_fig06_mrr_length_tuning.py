"""Fig. 6: MRR spectra vs ring-length adjustment.

The paper tunes the 7.5 um ring's resonance across four WDM channels by
adjusting the ring length in 68 nm steps: resonances at lambda_1..4
spaced 2.33 nm inside the 9.36 nm FSR.  We regenerate the four spectra
and re-measure FSR and channel spacing.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.photonics.mrr import AddDropMRR
from repro.sim.sweep import wavelength_grid


def build_channel_rings(tech):
    return [
        AddDropMRR(
            tech.compute_ring_spec(),
            design_wavelength=tech.wavelength,
            waveguide=tech.waveguide,
            coupler=tech.coupler,
            length_adjust=k * 68e-9,
        )
        for k in range(4)
    ]


def sweep_all(rings, wavelengths):
    return [np.asarray(ring.thru_transmission(wavelengths)) for ring in rings]


def test_fig6_length_adjust_spectra(benchmark, report, tech):
    rings = build_channel_rings(tech)
    # One FSR window holding all four channel resonances but excluding
    # the dL=0 ring's next-order replica at lambda_IN + FSR.
    wavelengths = wavelength_grid(tech.wavelength + 3.5e-9, 4.5e-9, points=4001)
    spectra = benchmark(sweep_all, rings, wavelengths)

    resonances = [float(wavelengths[np.argmin(s)]) for s in spectra]
    rows = []
    for k, (ring, resonance) in enumerate(zip(rings, resonances)):
        rows.append(
            (
                f"{k * 68} nm",
                f"{resonance * 1e9:.3f}",
                f"{(resonance - resonances[0]) * 1e9:.3f}",
                f"{ring.fwhm * 1e12:.1f}",
            )
        )
    lines = [
        ascii_table(
            ("dL", "resonance (nm)", "shift from dL=0 (nm)", "FWHM (pm)"), rows
        ),
        "",
        f"FSR: {rings[0].fsr * 1e9:.3f} nm (paper: 9.36 nm)",
        f"channel spacing: {(resonances[1] - resonances[0]) * 1e9:.3f} nm (paper: 2.33 nm)",
        f"channels per FSR: {int(rings[0].fsr // (resonances[1] - resonances[0]))} (paper: 4)",
    ]
    report("\n".join(lines), title="Fig. 6 — MRR spectra vs ring length adjustment")

    np.testing.assert_allclose(rings[0].fsr, 9.36e-9, rtol=1e-3)
    for k in range(1, 4):
        np.testing.assert_allclose(
            resonances[k] - resonances[0], k * 2.33e-9, atol=20e-12
        )
