"""Benchmark harness plumbing.

Each bench regenerates one of the paper's tables or figures as text.
The ``report`` fixture collects that text and a terminal-summary hook
prints every collected report after the benchmark table, so

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

contains both timings and the reproduced rows/series.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import default_technology
from repro.core.eoadc import EoAdc

_REPORTS: list[tuple[str, str]] = []


@pytest.fixture()
def report(request):
    """Collect a named text report for the terminal summary."""

    def add(text: str, title: str | None = None) -> None:
        _REPORTS.append((title or request.node.name, text))

    return add


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper artifacts")
    for title, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"=== {title} ===")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def ideal_adc(tech):
    return EoAdc(tech, trim_errors=np.zeros(tech.eoadc.levels))


@pytest.fixture(scope="session")
def trimmed_adc(tech):
    return EoAdc(tech)
