"""Fig. 8: eoADC ring transmissions vs analog input voltage.

Each of the 8 rings dips as V_IN crosses its reference; for any input
inside the full-scale range exactly one (or, within ~7 mV of a bin
edge, two adjacent) thru powers fall below the 18 uW reference — the
1-hot encoding property.
"""

import numpy as np

from repro.analysis.reporting import ascii_table


def sweep_powers(adc, voltages):
    return np.stack([adc.thru_powers(float(v)) for v in voltages])


def test_fig8_one_hot_dips(benchmark, report, ideal_adc):
    voltages = np.linspace(0.0, 3.999, 801)
    powers = benchmark(sweep_powers, ideal_adc, voltages)

    reference = ideal_adc.thresholders[0].reference_power
    active = powers < reference

    rows = []
    for ring in range(ideal_adc.levels):
        dip_index = int(np.argmin(powers[:, ring]))
        window = voltages[active[:, ring]]
        rows.append(
            (
                f"M{ring + 1}",
                f"{ideal_adc.reference_voltages[ring]:.2f}",
                f"{voltages[dip_index]:.3f}",
                f"{powers[dip_index, ring] * 1e6:.3f}",
                f"[{window.min():.3f}, {window.max():.3f}]" if window.size else "-",
            )
        )
    count_active = active.sum(axis=1)
    lines = [
        ascii_table(
            (
                "ring",
                "V_REF (V)",
                "dip at V_IN (V)",
                "min thru power (uW)",
                "active window (V)",
            ),
            rows,
        ),
        "",
        f"reference power: {reference * 1e6:.1f} uW per channel (paper: 18 uW)",
        f"input power: {ideal_adc.spec.channel_power * 1e6:.0f} uW per channel "
        "(paper: 200 uW)",
        f"samples with exactly 1 active block: {(count_active == 1).mean() * 100:.1f} %",
        f"samples with 2 adjacent active blocks (bin edges): "
        f"{(count_active == 2).mean() * 100:.1f} %",
    ]
    report("\n".join(lines), title="Fig. 8 — 1-hot encoding windows")

    # 1-hot property: every sample activates one or two adjacent blocks.
    assert np.all(count_active >= 1)
    assert np.all(count_active <= 2)
    # Dips walk monotonically with the reference ladder.
    dips = [voltages[np.argmin(powers[:, r])] for r in range(8)]
    assert all(b > a for a, b in zip(dips, dips[1:]))
    for ring in range(8):
        np.testing.assert_allclose(
            dips[ring], ideal_adc.reference_voltages[ring], atol=0.01
        )
