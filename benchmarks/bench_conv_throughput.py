"""Conv throughput: compiled im2col serving vs the per-patch device loop.

The CNN serving contract mirrors the dense one: the compiled conv path
must be (1) code-for-code identical to the patch-at-a-time device loop
and (2) fast enough to serve images.  This bench measures both on a
(28, 28) image with 8 signed 3x3 kernels — the acceptance floor is a
10x patch-throughput speedup; the compiled path typically lands orders
of magnitude beyond it.  The loop path is timed on a patch subsample
(it is the slow path by three orders of magnitude) and reported as a
patches/second rate.

Besides the terminal report, the summary is written to
``BENCH_conv.json`` at the repo root so the perf trajectory stays
machine-readable across runs.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.core.tensor_core import PhotonicTensorCore
from repro.ml.convolution import PhotonicConv2d, im2col

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_conv.json"
LOOP_PATCH_SAMPLE = 48


def test_conv_compiled_speedup(benchmark, report, tech):
    rng = np.random.default_rng(8)
    core = PhotonicTensorCore(rows=8, columns=9, technology=tech)
    kernels = rng.normal(0.0, 1.0, (8, 3, 3))
    image = rng.uniform(0.0, 1.0, (28, 28))

    loop = PhotonicConv2d(kernels, core)
    fast = PhotonicConv2d(kernels, core, runtime=True)
    patches = im2col(image, loop.kernel_size, loop.stride)
    total_patches = patches.shape[1]

    # Loop path: time a subsample (full 676 patches would dominate the
    # suite), report the per-patch rate.
    subset = patches[:, :LOOP_PATCH_SAMPLE]
    loop_start = time.perf_counter()
    loop_outputs = loop._forward_patches(subset)
    loop_time = time.perf_counter() - loop_start
    loop_rate = LOOP_PATCH_SAMPLE / loop_time

    # Compiled path: the whole image in one dense matmul per weight
    # array (first call pays the engine compile; the benchmark fixture
    # then measures the steady state over many rounds — use its mean
    # rather than one noisy wall-clock sample).
    fast.forward(image)
    result = benchmark(fast.forward, image)
    fast_time = benchmark.stats.stats.mean
    fast_rate = total_patches / fast_time
    speedup = fast_rate / loop_rate

    # The contract is bit-for-bit equality with the device loop.
    fast_outputs = fast._forward_patches(patches)
    codes_equal = bool(np.array_equal(loop_outputs, fast_outputs[:, :LOOP_PATCH_SAMPLE]))
    assert np.array_equal(result, fast_outputs.reshape(result.shape))

    rows = [
        (
            "patch device loop",
            f"{1e3 * LOOP_PATCH_SAMPLE / loop_rate:.1f}",
            f"{loop_rate:,.0f}",
            "1.0x",
        ),
        (
            "compiled runtime",
            f"{fast_time * 1e3:.3f}",
            f"{fast_rate:,.0f}",
            f"{speedup:,.0f}x",
        ),
    ]
    summary = {
        "image": [28, 28],
        "kernels": int(loop.num_kernels),
        "kernel_size": int(loop.kernel_size),
        "patches": int(total_patches),
        "analog_passes_per_patch": int(loop.analog_passes),
        "loop_patches_per_s": loop_rate,
        "compiled_patches_per_s": fast_rate,
        "speedup": speedup,
        "modelled_patch_throughput_per_s": loop.patch_throughput(),
        "outputs_match_loop": codes_equal,
    }
    BENCH_JSON.write_text(json.dumps(summary, indent=2) + "\n")

    lines = [
        "(28, 28) image, 8 signed 3x3 kernels on an 8x9 core "
        f"({total_patches} patches, {loop.analog_passes} analog passes each)",
        ascii_table(("path", "time [ms]", "patches/s", "speedup"), rows),
        "",
        f"outputs match device loop : {codes_equal} "
        f"(on the {LOOP_PATCH_SAMPLE}-patch timing subsample)",
        f"modelled ADC-bound rate   : {loop.patch_throughput() / 1e9:.0f} G patches/s",
        f"summary written to        : {BENCH_JSON.name}",
    ]
    report("\n".join(lines), title="Runtime — compiled conv vs patch loop")

    assert codes_equal
    assert speedup >= 10.0
