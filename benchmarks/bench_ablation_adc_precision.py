"""Ablation (Section II-C/IV-C text): scaling the eoADC precision.

The paper: "higher precision can be achieved by optimizing devices,
such as using high-Q MRRs, or by cascading multiple lower-bit ADCs with
shift-and-add operations."  We quantify both paths:

* native p-bit converters with the trim budget tracking the LSB (the
  'optimized devices' path) — DNL stays bounded;
* the same converters holding today's *absolute* 3 pm trim — the DNL
  blows past 0.5 LSB as the LSB shrinks, showing why better devices are
  needed;
* the shift-and-add cascade reaching 6 bits with two 3-bit stages.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.core.eoadc import EoAdc, ShiftAddEoAdc
from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    missing_codes,
    transfer_function,
)


def measure_dnl(adc, points=2001):
    voltages, codes = transfer_function(adc.convert, 0.0, 4.0 - 1e-6, points)
    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, adc.lsb, adc.levels)
    return float(np.max(np.abs(dnl))), missing_codes(codes, adc.levels)


def test_precision_scaling(benchmark, report, tech):
    rows = []
    scaled_results = {}
    for bits in (2, 3, 4, 5):
        adc = EoAdc(tech, bits=bits)
        max_dnl, missing = measure_dnl(adc)
        scaled_results[bits] = (max_dnl, missing)
        rows.append(
            (
                f"{bits}",
                "LSB-tracked trim",
                f"{adc.thresholders[0].reference_power * 1e6:.1f}",
                f"{max_dnl:.3f}",
                f"{len(missing)}",
            )
        )
    rng = np.random.default_rng(45)
    fixed_results = {}
    for bits in (3, 4, 5):
        trims = rng.normal(0.0, tech.eoadc.trim_sigma, 2**bits)
        adc = EoAdc(tech, bits=bits, trim_errors=trims, strict_decoder=False)
        max_dnl, missing = measure_dnl(adc)
        fixed_results[bits] = (max_dnl, missing)
        rows.append(
            (
                f"{bits}",
                "fixed 3 pm trim",
                f"{adc.thresholders[0].reference_power * 1e6:.1f}",
                f"{max_dnl:.3f}",
                f"{len(missing)}",
            )
        )

    cascade = ShiftAddEoAdc(tech)
    ramp = np.linspace(0.05, 3.95, 80)
    ideal = np.array([int(v / cascade.lsb) for v in ramp])
    measured = np.array([cascade.convert(float(v)) for v in ramp])
    cascade_error = int(np.max(np.abs(measured - ideal)))

    benchmark.pedantic(measure_dnl, args=(EoAdc(tech),), rounds=3, iterations=1)

    lines = [
        ascii_table(
            ("bits", "device corner", "P_ref (uW)", "max |DNL| (LSB)", "missing codes"),
            rows,
        ),
        "",
        f"shift-and-add cascade: {cascade.bits} bits from two 3-bit stages, "
        f"max ramp error {cascade_error} fine LSBs, "
        f"{cascade.total_power * 1e3:.1f} mW total",
        "",
        "shape: with trim tracking the LSB the converter scales; holding "
        "today's absolute trim, DNL degrades as the LSB shrinks — the "
        "paper's 'optimize devices for higher precision' claim.",
    ]
    report("\n".join(lines), title="Ablation — eoADC precision scaling")

    assert scaled_results[3][0] < 0.5 and not scaled_results[3][1]
    assert scaled_results[5][0] < 0.75
    # Fixed absolute trim degrades DNL monotonically with precision.
    assert fixed_results[5][0] > fixed_results[3][0]
    assert cascade_error <= 3
