"""Ablation: throughput/efficiency scaling with array size and weight
precision, against the electrical SRAM IMC baseline.

The paper's Section III argues the architecture scales by replicating
macros; Section I motivates it by electrical interconnect limits.  We
sweep the performance model across array sizes and weight precisions
and compare the electrical IMC macro's RC-limited numbers.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.baselines.electrical_imc import ElectricalImcMacro
from repro.core.performance import PerformanceModel


def measure(tech, rows, columns, bits):
    perf = PerformanceModel(tech, rows=rows, columns=columns, weight_bits=bits)
    return perf.throughput_tops, perf.tops_per_watt


def test_scaling_sweep(benchmark, report, tech):
    benchmark(measure, tech, 16, 16, 3)

    rows = []
    for size in (8, 16, 32, 64):
        tops, eff = measure(tech, size, size, 3)
        perf = PerformanceModel(tech, rows=size, columns=size, weight_bits=3)
        rows.append(
            (
                f"{size}x{size}",
                "3",
                f"{tops:.2f}",
                f"{perf.total_power * 1e3:.0f}",
                f"{eff:.2f}",
            )
        )
    for bits in (1, 3, 6):
        perf = PerformanceModel(tech, rows=16, columns=16, weight_bits=bits)
        rows.append(
            (
                "16x16",
                f"{bits}",
                f"{perf.throughput_tops:.2f}",
                f"{perf.total_power * 1e3:.0f}",
                f"{perf.tops_per_watt:.2f}",
            )
        )

    imc = ElectricalImcMacro(rows=16, columns=16, weight_bits=3)
    lines = [
        ascii_table(
            ("array", "weight bits", "TOPS", "power (mW)", "TOPS/W"), rows
        ),
        "",
        "electrical SRAM IMC baseline (RC-limited, 45 nm-class):",
        f"  16x16: {imc.throughput_tops:.2f} TOPS, {imc.tops_per_watt:.1f} TOPS/W, "
        f"weight update {imc.weight_update_rate / 1e9:.1f} GHz "
        f"(vs photonic {tech.psram.update_rate / 1e9:.0f} GHz)",
        f"  256-row column: access time {ElectricalImcMacro(rows=256).access_time * 1e9:.2f} ns "
        "(bitline RC) vs photonic sample period 0.125 ns",
        "",
        "shape: photonic throughput scales with array area at nearly "
        "constant ADC cost per row; the electrical macro's update rate "
        "and tall-array access time are the Section-I bottlenecks.",
    ]
    report("\n".join(lines), title="Ablation — scaling vs electrical IMC")

    tops = [float(row[2]) for row in rows[:4]]
    assert all(b > a for a, b in zip(tops, tops[1:]))
    eff = [float(row[4]) for row in rows[:4]]
    assert all(b >= a for a, b in zip(eff, eff[1:]))
    assert tech.psram.update_rate / imc.weight_update_rate >= 10
