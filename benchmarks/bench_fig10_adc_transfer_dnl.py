"""Fig. 10: eoADC transfer function and DNL.

The paper reports code widths close to ideal with no missing codes (no
-1 LSB DNL).  We sweep the trimmed converter over the 4 V full scale,
extract code transitions, and regenerate the transfer staircase and the
per-code DNL.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.electronics.adc_metrics import (
    code_transitions,
    differential_nonlinearity,
    integral_nonlinearity,
    is_monotonic,
    missing_codes,
    sqnr_from_ramp,
    transfer_function,
)


def sweep_transfer(adc, points):
    return transfer_function(adc.convert, 0.0, 4.0 - 1e-6, points)


def test_fig10_transfer_and_dnl(benchmark, report, trimmed_adc):
    voltages, codes = benchmark.pedantic(
        sweep_transfer, args=(trimmed_adc, 4001), rounds=3, iterations=1
    )

    transitions = code_transitions(voltages, codes)
    dnl = differential_nonlinearity(transitions, trimmed_adc.lsb, trimmed_adc.levels)
    inl = integral_nonlinearity(dnl)
    missing = missing_codes(codes, trimmed_adc.levels)

    staircase_rows = [
        (f"{code}", f"{transitions.get(code, float('nan')):.4f}")
        for code in range(1, trimmed_adc.levels)
    ]
    dnl_rows = [
        (f"{code:03b}", f"{dnl[code]:+.3f}", f"{inl[code]:+.3f}")
        for code in range(trimmed_adc.levels)
    ]
    lines = [
        "transfer function (code transition voltages):",
        ascii_table(("code", "transition (V)"), staircase_rows),
        "",
        "differential / integral nonlinearity:",
        ascii_table(("code", "DNL (LSB)", "INL (LSB)"), dnl_rows),
        "",
        f"max |DNL| = {np.max(np.abs(dnl)):.3f} LSB "
        "(paper: close to ideal, no -1 LSB)",
        f"missing codes: {missing if missing else 'none (paper: none)'}",
        f"monotonic: {is_monotonic(codes)}",
        f"ramp SQNR: {sqnr_from_ramp(voltages, codes, trimmed_adc.lsb):.1f} dB",
    ]
    report("\n".join(lines), title="Fig. 10 — ADC transfer function + DNL")

    assert missing == []
    assert is_monotonic(codes)
    assert np.max(np.abs(dnl)) < 0.5
    assert np.any(np.abs(dnl) > 0.01)  # visible non-ideal texture, as plotted
