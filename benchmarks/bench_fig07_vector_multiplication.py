"""Fig. 7: 1x4 vector multiplication with 3-bit weights over 4 WDM
channels.

The paper multiplies two 1x4 vectors (analog intensities x 3-bit pSRAM
weights), simulating one wavelength at a time with every ring in the
testbench and summing photocurrents; the normalized output follows the
expected products linearly.  We regenerate that scatter, confirm the
per-channel workaround matches the joint evaluation, and fit linearity.
"""

import numpy as np

from repro.analysis.linearity import linearity_report
from repro.analysis.reporting import ascii_table
from repro.core.compute_core import VectorComputeCore


def run_cases(core, cases):
    return [core.normalized_output(x) for x in cases]


def test_fig7_vector_multiplication_linearity(benchmark, report, tech):
    core = VectorComputeCore(vector_length=4, weight_bits=3, technology=tech)
    core.load_weights([7, 3, 5, 1])
    rng = np.random.default_rng(77)
    cases = [rng.uniform(0.0, 1.0, 4) for _ in range(16)]
    cases.append(np.zeros(4))
    cases.append(np.ones(4))

    measured = benchmark(run_cases, core, cases)
    expected = [core.ideal_dot_product(x) for x in cases]

    rows = [
        (
            np.array2string(np.round(x, 2), separator=","),
            f"{e:.4f}",
            f"{m:.4f}",
            f"{m - e:+.4f}",
        )
        for x, e, m in zip(cases, expected, measured)
    ]
    fit = linearity_report(expected, measured)
    per_channel = core.compute_per_channel(cases[3])
    joint = core.compute(cases[3])
    lines = [
        "weights w = [7, 3, 5, 1] (3-bit pSRAM)",
        ascii_table(
            ("inputs IN", "expected sum(IN*w)/8", "normalized I_PD", "error"), rows
        ),
        "",
        f"linear fit: slope {fit.slope:.4f}, intercept {fit.intercept:+.4f}, "
        f"R^2 {fit.r_squared:.6f}",
        f"max |residual| {fit.max_abs_error:.4f} (of {max(expected):.3f} full scale)",
        f"per-channel PDK mode vs joint evaluation: "
        f"{abs(per_channel - joint) / joint:.2e} relative difference",
    ]
    report("\n".join(lines), title="Fig. 7 — 1x4 x 1x4 multiplication linearity")

    assert fit.r_squared > 0.999
    assert abs(fit.slope - 1.0) < 0.05
    assert abs(per_channel - joint) / joint < 1e-9
