"""Cluster scale-out: routed fleets of 1/2/4 cores vs one core.

The serving API's scale-out contract is that a
:class:`repro.api.PhotonicCluster` (1) reproduces the single-core
session bit for bit at ``cores=1`` (checked in the tier-1 suite) and
(2) turns extra cores into modelled fleet throughput without
sacrificing cache locality — *if* the routing policy is
cache-affinity.  This bench replays the Zipf-skewed multi-tenant trace
through every (core count, routing policy) pair, asserts the
affinity-vs-round-robin hit-rate separation the routing exists for,
and writes ``BENCH_cluster.json`` at the repo root so the scaling
trajectory stays machine-readable alongside ``BENCH_runtime.json`` /
``BENCH_conv.json``.
"""

from pathlib import Path

from repro.runtime.serving import run_cluster_serve_bench

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_cluster.json"


def test_cluster_scaling_sweep(benchmark, report, tech):
    summary = benchmark.pedantic(
        run_cluster_serve_bench,
        kwargs={
            "requests": 240,
            "cores_sweep": (1, 2, 4),
            "json_path": BENCH_JSON,
            "print_fn": lambda _: None,
        },
        iterations=1,
        rounds=1,
    )

    by_cores = {entry["cores"]: entry["policies"] for entry in summary["sweep"]}
    assert set(by_cores) == {1, 2, 4}

    lines = [
        "240-request Zipf trace, 8x8 tiles, max_batch=32 flush policy",
        f"{'cores':>5}  {'routing':<15} {'modelled inf/s':>14}  "
        f"{'hit rate':>8}  {'evictions':>9}",
    ]
    for cores, policies in sorted(by_cores.items()):
        for name, result in policies.items():
            lines.append(
                f"{cores:>5}  {name:<15} "
                f"{result['modeled_throughput_per_s']:>14,.3g}  "
                f"{result['cache_hit_rate']:>7.0%}  "
                f"{result['cache_evictions']:>9}"
            )
    lines.append(f"summary written to: {BENCH_JSON.name}")
    report("\n".join(lines), title="Cluster — routed fleet scaling")

    # The point of cache-affinity routing: on a skewed trace it must
    # beat round-robin's aggregate hit rate on every multi-core fleet.
    for cores in (2, 4):
        affinity = by_cores[cores]["cache_affinity"]
        round_robin = by_cores[cores]["round_robin"]
        assert affinity["cache_hit_rate"] > round_robin["cache_hit_rate"]
    # Fleet-level modelled throughput scales with the core count under
    # affinity routing (cores digitize concurrently).
    assert (
        by_cores[4]["cache_affinity"]["modeled_throughput_per_s"]
        > by_cores[1]["cache_affinity"]["modeled_throughput_per_s"]
    )
    # On one core every policy routes identically, so the modelled
    # fleet numbers must agree exactly.
    single = by_cores[1]
    assert (
        single["round_robin"]["modeled_throughput_per_s"]
        == single["cache_affinity"]["modeled_throughput_per_s"]
        == single["least_loaded"]["modeled_throughput_per_s"]
    )
    assert BENCH_JSON.exists()
