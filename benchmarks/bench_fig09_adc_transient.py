"""Fig. 9: eoADC transient verification at 8 GS/s.

Analog steps 0.72 V, 2.0 V, 3.3 V (one 125 ps sample period each):
0.72 V activates only B2 (code 001), 3.3 V only B7 (code 110), while
2.0 V sits on a bin edge and activates B4 *and* B5 — resolved to 100 by
the ceiling-priority ROM decoder.
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.electronics.rom_decoder import code_to_bits
from repro.sim.waveform import StepSequence


def run_transient(adc):
    sequence = StepSequence([0.72, 2.0, 3.3], period=1.0 / 8e9)
    return adc.transient_convert(sequence, duration=sequence.duration)


def test_fig9_transient_codes(benchmark, report, ideal_adc):
    record = benchmark.pedantic(run_transient, args=(ideal_adc,), rounds=3, iterations=1)

    rows = []
    for sample_time, code, level in zip(
        record.sample_times, record.codes, (0.72, 2.0, 3.3)
    ):
        probe = sample_time - 0.5e-12
        rails = [
            record.recorder.waveform(f"B{k}").value_at(probe) for k in range(1, 9)
        ]
        active = [f"B{k + 1}" for k, rail in enumerate(rails) if rail > 0.9]
        bits = "".join(str(b) for b in code_to_bits(code, 3))
        rows.append(
            (
                f"{level:.2f}",
                f"{sample_time * 1e12:.1f}",
                ", ".join(active),
                bits,
            )
        )
    lines = [
        ascii_table(
            ("V_IN (V)", "sampled at (ps)", "active blocks", "digital code"), rows
        ),
        "",
        "paper: 0.72 V -> B2 -> 001; 2.0 V -> B4+B5 -> 100 (ceiling); "
        "3.3 V -> B7 -> 110",
        f"sampling speed: {1e-12 / np.diff(record.sample_times).mean() * 1e3:.1f} GS/s "
        "(paper: 8 GS/s, ~125 ps clock)",
    ]
    report("\n".join(lines), title="Fig. 9 — eoADC transient at 8 GS/s")

    assert record.codes == [1, 4, 6]
    # The boundary phase must show the two-adjacent activation.
    probe = record.sample_times[1] - 0.5e-12
    b4 = record.recorder.waveform("B4").value_at(probe)
    b5 = record.recorder.waveform("B5").value_at(probe)
    assert b4 > 0.9 and b5 > 0.9
