"""Table I: performance comparison of photonic IMC macros.

Regenerates the paper's comparison table with 'This Work' computed live
from the performance model (throughput, power efficiency, weight-update
speed), plus the Section IV-D power breakdown behind the 3.02 TOPS/W.
"""

import numpy as np

from repro.baselines.photonic_macros import format_table_one, table_one
from repro.core.performance import PerformanceModel


def build_and_measure(tech):
    perf = PerformanceModel(tech)
    return perf.throughput_tops, perf.tops_per_watt, perf.power_ledger()


def test_table1_comparison(benchmark, report, tech):
    throughput, efficiency, ledger = benchmark(build_and_measure, tech)
    perf = PerformanceModel(tech)

    lines = [
        format_table_one(perf),
        "",
        "Section IV-D power breakdown (16x16, 3-bit, 8 GS/s):",
        ledger.report(scale=1e3, unit="mW"),
        "",
        f"throughput      : {throughput:.3f} TOPS   (paper: 4.10 TOPS)",
        f"power efficiency: {efficiency:.3f} TOPS/W (paper: 3.02 TOPS/W)",
        f"pSRAM bitcells  : {perf.psram_cell_count} (paper: 768)",
        f"weight update   : {perf.weight_update_rate / 1e9:.0f} GHz (paper: 20 GHz)",
        f"energy per op   : {perf.energy_per_op * 1e12:.3f} pJ",
    ]
    report("\n".join(lines), title="Table I — photonic IMC macro comparison")

    np.testing.assert_allclose(throughput, 4.096, rtol=1e-6)
    np.testing.assert_allclose(efficiency, 3.02, atol=0.005)
    records = {record.name: record for record in table_one(perf)}
    this_work = records["This Work"]
    assert this_work.throughput_tops == 4.10
    assert this_work.tops_per_watt == 3.02
    # Shape of the comparison: this work leads every macro with a real
    # memory update path, and only [49] reports higher raw throughput.
    assert records["Conv accelerator [49]"].throughput_tops > this_work.throughput_tops
    for name in ("Parallel PPU [48]", "Reconfig. tensor core [51]"):
        assert this_work.throughput_tops > records[name].throughput_tops
        assert this_work.tops_per_watt > records[name].tops_per_watt
