"""Ablation (Section IV-C text): eoADC without TIAs and amplifiers.

The paper: removing the cascaded amplifiers and TIAs cuts electrical
power by 58% but drops the speed to 416.7 MS/s.  We rebuild both
variants, re-measure power/energy, and show transiently *why* the slow
variant fails at 8 GS/s (the balanced pair must slew the thresholding
node across the rails on its own photocurrent).
"""

import numpy as np

from repro.analysis.reporting import ascii_table
from repro.core.eoadc import EoAdc
from repro.sim.waveform import StepSequence


def convert_slow(adc):
    period = 1.0 / adc.sample_rate
    sequence = StepSequence([3.3], period=period)
    return adc.transient_convert(sequence, duration=period, time_step=2e-12)


def test_no_tia_speed_power_trade(benchmark, report, tech):
    fast = EoAdc(tech, trim_errors=np.zeros(8))
    slow = EoAdc(tech, trim_errors=np.zeros(8), use_read_chain=False)

    record = benchmark.pedantic(convert_slow, args=(slow,), rounds=3, iterations=1)
    assert record.codes[-1] == 6  # correct at its own 416.7 MS/s rate

    fast_electrical = fast.power_ledger().total_for("electrical")
    slow_electrical = slow.power_ledger().total_for("electrical")
    saving = 1.0 - slow_electrical / fast_electrical

    # The slow variant sampled at 8 GS/s misses the code.
    slow_at_8g = EoAdc(tech, trim_errors=np.zeros(8), use_read_chain=False)
    premature = slow_at_8g.transient_convert(
        StepSequence([3.3], period=125e-12), duration=125e-12, sample_rate=8e9
    )

    rows = [
        (
            "with TIA + amplifiers",
            f"{fast.sample_rate / 1e9:.2f} GS/s",
            f"{fast_electrical * 1e3:.2f}",
            f"{fast.total_power * 1e3:.2f}",
            f"{fast.energy_per_conversion * 1e12:.2f}",
        ),
        (
            "without (paper ablation)",
            f"{slow.sample_rate / 1e6:.1f} MS/s",
            f"{slow_electrical * 1e3:.2f}",
            f"{slow.total_power * 1e3:.2f}",
            f"{slow.energy_per_conversion * 1e12:.2f}",
        ),
    ]
    lines = [
        ascii_table(
            ("variant", "rate", "electrical (mW)", "total (mW)", "pJ/conv"), rows
        ),
        "",
        f"electrical power saving without read chain: {saving * 100:.0f} % "
        "(paper: 58 %)",
        f"no-TIA variant sampled at 8 GS/s returns code {premature.codes[0]} "
        "instead of 6: the thresholding node cannot slew in 125 ps",
    ]
    report("\n".join(lines), title="Ablation — eoADC without TIA/amplifiers")

    np.testing.assert_allclose(saving, 0.58, atol=0.005)
    np.testing.assert_allclose(slow.sample_rate, 416.7e6, rtol=1e-3)
    assert premature.codes[0] != 6
