"""Ablation (Section III): channel count vs crosstalk in one FSR.

The paper: 'Channel spacing can further be lowered to support more
wavelength channels depending on the MRR transmission characteristics.'
We sweep the spacing, count usable channels in the 9.36 nm FSR, and
measure the worst-case inter-channel attenuation and its impact on
multiplication linearity.
"""

import numpy as np

from repro.analysis.linearity import linearity_report
from repro.analysis.reporting import ascii_table
from repro.core.multiplier import OneBitPhotonicMultiplier
from repro.photonics.wdm import ChannelPlan, crosstalk_matrix, usable_channels


def linearity_at_spacing(tech, spacing, channels):
    """Crosstalk-aware multiply linearity with every ring resonant."""
    import dataclasses

    compute = dataclasses.replace(
        tech.compute,
        channel_spacing=spacing,
        wavelengths_per_macro=channels,
        length_adjust_step=68e-9 * spacing / 2.33e-9,
    )
    modified = tech.replace(compute=compute)
    from repro.core.compute_core import VectorComputeCore

    core = VectorComputeCore(channels, 3, modified)
    rng = np.random.default_rng(13)
    core.load_weights(rng.integers(0, 8, channels))
    expected, measured = [], []
    for _ in range(10):
        x = rng.uniform(0.0, 1.0, channels)
        expected.append(core.ideal_dot_product(x))
        measured.append(core.normalized_output(x))
    return linearity_report(expected, measured)


def test_channel_spacing_tradeoff(benchmark, report, tech):
    fsr = 9.36e-9
    rows = []
    for spacing in (2.33e-9, 1.5e-9, 1.0e-9, 0.5e-9):
        channels = usable_channels(fsr, spacing)
        rings = []
        for index in range(min(channels, 8)):
            multiplier = OneBitPhotonicMultiplier(channel_index=0, technology=tech)
            multiplier.ring.length_adjust = 0.0
            multiplier.ring.trim_error = index * spacing  # emulate grid position
            multiplier.bit = 0
            rings.append(multiplier.ring)
        plan = ChannelPlan(tech.wavelength, spacing, len(rings))
        matrix = crosstalk_matrix(rings, plan)
        off_diagonal = matrix[~np.eye(len(rings), dtype=bool)]
        worst_db = 10.0 * np.log10(off_diagonal.min())
        fit = linearity_at_spacing(tech, spacing, min(channels, 8))
        rows.append(
            (
                f"{spacing * 1e9:.2f}",
                f"{channels}",
                f"{worst_db:+.3f}",
                f"{fit.r_squared:.6f}",
                f"{fit.max_abs_error:.4f}",
            )
        )

    benchmark.pedantic(
        linearity_at_spacing, args=(tech, 2.33e-9, 4), rounds=3, iterations=1
    )

    lines = [
        ascii_table(
            (
                "spacing (nm)",
                "channels/FSR",
                "worst crosstalk (dB)",
                "multiply R^2",
                "max |residual|",
            ),
            rows,
        ),
        "",
        "shape: the paper's 2.33 nm spacing keeps crosstalk negligible; "
        "packing more channels degrades neighbour transparency and "
        "multiplication linearity.",
    ]
    report("\n".join(lines), title="Ablation — WDM channel packing vs crosstalk")

    # Paper's operating point: 4 channels, essentially no crosstalk.
    assert rows[0][1] == "4"
    assert float(rows[0][2]) > -0.05
    # Tighter spacing -> strictly worse worst-case crosstalk.
    worst = [float(row[2]) for row in rows]
    assert all(b <= a for a, b in zip(worst, worst[1:]))
